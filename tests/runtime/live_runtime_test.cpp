// Live multithreaded runtime: the same join/migration logic on real
// threads. Completeness must hold under concurrency and migrations.
#include "runtime/live_engine.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>

#include "datagen/keygen.hpp"

namespace fastjoin {
namespace {

std::vector<Record> make_trace(std::uint64_t seed, int total,
                               int num_keys, double zipf) {
  KeyStreamSpec spec;
  spec.num_keys = num_keys;
  spec.zipf_s = zipf;
  spec.seed = seed;
  KeyGenerator gen(spec);
  Xoshiro256 rng(seed ^ 0xbeef);
  std::vector<Record> out;
  std::uint64_t r_seq = 0, s_seq = 0;
  for (int i = 0; i < total; ++i) {
    Record rec;
    rec.side = rng.next_below(2) ? Side::kS : Side::kR;
    rec.key = gen();
    rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
    rec.ts = i;  // strictly increasing: a total order over the feed
    rec.payload = i;
    out.push_back(rec);
  }
  return out;
}

std::uint64_t expected_pairs(const std::vector<Record>& trace) {
  std::map<KeyId, std::pair<std::uint64_t, std::uint64_t>> counts;
  for (const auto& rec : trace) {
    auto& [r, s] = counts[rec.key];
    (rec.side == Side::kR ? r : s)++;
  }
  std::uint64_t total = 0;
  for (const auto& [_, rs] : counts) total += rs.first * rs.second;
  return total;
}

TEST(LiveRuntime, ProcessesAllRecords) {
  LiveConfig cfg;
  cfg.instances = 2;
  cfg.balancer = false;
  LiveEngine engine(cfg);
  engine.start();
  const auto trace = make_trace(1, 10'000, 100, 1.0);
  for (const auto& rec : trace) engine.push(rec);
  const auto stats = engine.finish();
  EXPECT_EQ(stats.records_in, trace.size());
  EXPECT_EQ(stats.stores + stats.probes, trace.size() * 2);
}

TEST(LiveRuntime, ExactlyOnceWithoutBalancer) {
  LiveConfig cfg;
  cfg.instances = 3;
  cfg.balancer = false;
  LiveEngine engine(cfg);
  engine.start();
  const auto trace = make_trace(2, 12'000, 500, 1.1);
  for (const auto& rec : trace) engine.push(rec);
  const auto stats = engine.finish();
  EXPECT_EQ(stats.results, expected_pairs(trace));
}

TEST(LiveRuntime, ExactlyOnceWithMigrations) {
  LiveConfig cfg;
  cfg.instances = 4;
  cfg.balancer = true;
  cfg.planner.theta = 1.2;
  cfg.min_heaviest_load = 10.0;
  cfg.monitor_period = std::chrono::milliseconds(2);
  LiveEngine engine(cfg);

  std::mutex mu;
  std::set<std::tuple<KeyId, std::uint64_t, std::uint64_t>> seen;
  std::size_t duplicates = 0;
  engine.set_on_match([&](const MatchPair& p) {
    std::lock_guard<std::mutex> lock(mu);
    if (!seen.insert({p.key, p.r_seq, p.s_seq}).second) ++duplicates;
  });

  engine.start();
  const auto trace = make_trace(3, 10'000, 1000, 1.0);
  for (const auto& rec : trace) engine.push(rec);
  const auto stats = engine.finish();

  EXPECT_EQ(duplicates, 0u);
  EXPECT_EQ(seen.size(), expected_pairs(trace));
  EXPECT_EQ(stats.results, expected_pairs(trace));
}

TEST(LiveRuntime, MigrationsFireUnderSkew) {
  LiveConfig cfg;
  cfg.instances = 4;
  cfg.balancer = true;
  cfg.planner.theta = 1.2;
  cfg.min_heaviest_load = 10.0;
  cfg.monitor_period = std::chrono::milliseconds(1);
  LiveEngine engine(cfg);
  engine.start();
  const auto trace = make_trace(4, 30'000, 300, 1.3);
  for (const auto& rec : trace) engine.push(rec);
  const auto stats = engine.finish();
  EXPECT_GT(stats.migrations, 0u);
  EXPECT_GT(stats.tuples_migrated, 0u);
  EXPECT_EQ(stats.results, expected_pairs(trace));
}

TEST(LiveRuntime, LatencyStatsPopulated) {
  LiveConfig cfg;
  cfg.instances = 2;
  cfg.balancer = false;
  LiveEngine engine(cfg);
  engine.start();
  for (const auto& rec : make_trace(5, 5'000, 50, 1.0)) engine.push(rec);
  const auto stats = engine.finish();
  EXPECT_GT(stats.probes, 0u);
  EXPECT_GT(stats.mean_latency_us, 0.0);
  EXPECT_GE(stats.p99_latency_us, 0.0);
}

TEST(LiveRuntime, DestructorWithoutFinishIsSafe) {
  LiveConfig cfg;
  cfg.instances = 2;
  {
    LiveEngine engine(cfg);
    engine.start();
    for (const auto& rec : make_trace(6, 1'000, 20, 1.0)) {
      engine.push(rec);
    }
    // finish() runs from the destructor.
  }
  SUCCEED();
}

TEST(LiveRuntime, WindowedJoinEvicts) {
  LiveConfig cfg;
  cfg.instances = 2;
  cfg.balancer = true;  // the monitor thread drives window ticks
  cfg.planner.theta = 1e12;  // no migrations, just windows
  cfg.monitor_period = std::chrono::milliseconds(1);
  cfg.window_subwindows = 2;
  cfg.subwindow_len = std::chrono::milliseconds(5);
  LiveEngine engine(cfg);
  engine.start();
  const auto trace = make_trace(8, 5'000, 100, 1.0);
  for (const auto& rec : trace) {
    engine.push(rec);
    // Slow feed so several sub-windows elapse mid-stream.
    if (rec.seq % 500 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  const auto stats = engine.finish();
  EXPECT_GT(stats.evicted, 0u);
  // Windowed results are a strict subset of the full-history join.
  EXPECT_LT(stats.results, expected_pairs(trace));
  EXPECT_GT(stats.results, 0u);
}

TEST(LiveRuntime, FullHistoryNeverEvicts) {
  LiveConfig cfg;
  cfg.instances = 2;
  cfg.balancer = true;
  cfg.planner.theta = 1e12;
  cfg.monitor_period = std::chrono::milliseconds(1);
  cfg.window_subwindows = 0;
  LiveEngine engine(cfg);
  engine.start();
  const auto trace = make_trace(9, 5'000, 100, 1.0);
  for (const auto& rec : trace) engine.push(rec);
  const auto stats = engine.finish();
  EXPECT_EQ(stats.evicted, 0u);
  EXPECT_EQ(stats.results, expected_pairs(trace));
}

TEST(LiveRuntime, RepeatedRunsConsistent) {
  const auto trace = make_trace(7, 10'000, 400, 1.1);
  const auto expected = expected_pairs(trace);
  for (int round = 0; round < 3; ++round) {
    LiveConfig cfg;
    cfg.instances = 3;
    cfg.balancer = (round % 2 == 1);
    cfg.planner.theta = 1.3;
    cfg.min_heaviest_load = 10.0;
    cfg.monitor_period = std::chrono::milliseconds(2);
    LiveEngine engine(cfg);
    engine.start();
    for (const auto& rec : trace) engine.push(rec);
    const auto stats = engine.finish();
    EXPECT_EQ(stats.results, expected) << "round " << round;
  }
}

}  // namespace
}  // namespace fastjoin
