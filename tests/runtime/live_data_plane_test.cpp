// Stress tests for the lock-free, batched data plane: multiple
// registered producers pushing batches concurrently with migrations and
// crashes. The watermark-barrier ordering invariant is what is under
// test — every scenario asserts zero duplicate matches, and the clean
// runs additionally assert exact completeness and per-key pair sets,
// which fail if any record is processed out of per-key order (a probe
// overtaking its matching store loses the match; a store overtaking an
// earlier probe mints an extra one).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "runtime/live_engine.hpp"

#include "datagen/keygen.hpp"

namespace fastjoin {
namespace {

/// Per-producer trace over a key space disjoint from every other
/// producer's (key = base * n_producers + producer), with globally
/// unique, per-producer-increasing timestamps (ts = i * n_producers +
/// producer). Disjoint keys make the union's expected pair set exactly
/// the sum of per-producer expectations regardless of interleaving.
std::vector<Record> make_producer_trace(int producer, int n_producers,
                                        int total, int num_keys,
                                        double zipf) {
  KeyStreamSpec spec;
  spec.num_keys = num_keys;
  spec.zipf_s = zipf;
  spec.seed = 77 + static_cast<std::uint64_t>(producer);
  KeyGenerator gen(spec);
  Xoshiro256 rng(spec.seed ^ 0xbeef);
  std::vector<Record> out;
  out.reserve(total);
  std::uint64_t r_seq = 0, s_seq = 0;
  for (int i = 0; i < total; ++i) {
    Record rec;
    rec.side = rng.next_below(2) ? Side::kS : Side::kR;
    rec.key = gen() * static_cast<KeyId>(n_producers) +
              static_cast<KeyId>(producer);
    rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
    rec.ts = static_cast<std::uint64_t>(i) * n_producers + producer;
    rec.payload = rec.ts;
    out.push_back(rec);
  }
  return out;
}

std::uint64_t expected_pairs(const std::vector<std::vector<Record>>& traces) {
  std::map<KeyId, std::pair<std::uint64_t, std::uint64_t>> counts;
  for (const auto& trace : traces) {
    for (const auto& rec : trace) {
      auto& [r, s] = counts[rec.key];
      (rec.side == Side::kR ? r : s)++;
    }
  }
  std::uint64_t total = 0;
  for (const auto& [_, rs] : counts) total += rs.first * rs.second;
  return total;
}

std::uint64_t fingerprint(const MatchPair& p) {
  auto mix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  return mix(mix(mix(p.key) ^ p.r_seq) ^ p.s_seq);
}

/// Thread-safe duplicate detector over match fingerprints.
class MatchLog {
 public:
  void add(const MatchPair& p) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!seen_.insert(fingerprint(p)).second) ++duplicates_;
  }
  std::uint64_t duplicates() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return duplicates_;
  }
  std::uint64_t unique() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return seen_.size();
  }
  bool contains(std::uint64_t fp) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return seen_.count(fp) > 0;
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t duplicates_ = 0;
};

/// Feed every trace from its own registered-producer thread in batches.
void feed_concurrently(LiveEngine& engine,
                       const std::vector<std::vector<Record>>& traces,
                       std::size_t batch_size) {
  std::vector<std::thread> producers;
  producers.reserve(traces.size());
  for (const auto& trace : traces) {
    producers.emplace_back([&engine, &trace, batch_size] {
      const int id = engine.register_producer();
      for (std::size_t i = 0; i < trace.size(); i += batch_size) {
        const std::size_t n = std::min(batch_size, trace.size() - i);
        engine.push_batch(trace.data() + i, n, id);
      }
    });
  }
  for (auto& t : producers) t.join();
}

TEST(LiveDataPlane, MultiProducerBatchedExactlyOnceWithMigrations) {
  LiveConfig cfg;
  cfg.instances = 4;
  cfg.balancer = true;
  cfg.planner.theta = 1.2;
  cfg.min_heaviest_load = 10.0;
  cfg.monitor_period = std::chrono::milliseconds(2);
  // No faults are injected here, so the supervisor's declare-dead
  // backstop must never fire: under TSan a backlogged worker can
  // legitimately take minutes to reach a migration reply, and a
  // spurious dead-declaration loses its store and breaks exactness.
  cfg.migration_timeout = std::chrono::minutes(10);
  LiveEngine engine(cfg);
  MatchLog log;
  engine.set_on_match([&](const MatchPair& p) { log.add(p); });
  engine.start();

  const int n_producers = 4;
  std::vector<std::vector<Record>> traces;
  for (int p = 0; p < n_producers; ++p) {
    traces.push_back(
        make_producer_trace(p, n_producers, 12'000, 400, 1.0));
  }
  feed_concurrently(engine, traces, 64);

  const auto stats = engine.finish();
  EXPECT_EQ(stats.records_in, 48'000u);
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_EQ(stats.results, expected_pairs(traces));
  EXPECT_EQ(log.unique(), stats.results);
}

TEST(LiveDataPlane, PerKeyOrderHoldsAcrossMigrations) {
  // Small enough to enumerate the full expected pair set: with globally
  // unique timestamps each (r, s) pair of a key is emitted exactly once
  // (by whichever record arrives later), so the emitted set must equal
  // the cross product per key — any out-of-order processing swaps a
  // real pair for a phantom and breaks set equality.
  LiveConfig cfg;
  cfg.instances = 3;
  cfg.balancer = true;
  cfg.planner.theta = 1.1;
  cfg.min_heaviest_load = 5.0;
  cfg.monitor_period = std::chrono::milliseconds(1);
  // No faults injected: keep the declare-dead backstop out of reach of
  // sanitizer slowdown (see MultiProducerBatchedExactlyOnceWithMigrations).
  cfg.migration_timeout = std::chrono::minutes(10);
  LiveEngine engine(cfg);
  MatchLog log;
  engine.set_on_match([&](const MatchPair& p) { log.add(p); });
  engine.start();

  const int n_producers = 2;
  std::vector<std::vector<Record>> traces;
  for (int p = 0; p < n_producers; ++p) {
    traces.push_back(make_producer_trace(p, n_producers, 3'000, 80, 0.6));
  }
  feed_concurrently(engine, traces, 32);
  const auto stats = engine.finish();

  // Enumerate the ground-truth pair set from the union trace.
  std::map<KeyId, std::pair<std::vector<std::uint64_t>,
                            std::vector<std::uint64_t>>>
      by_key;
  for (const auto& trace : traces) {
    for (const auto& rec : trace) {
      auto& [rs, ss] = by_key[rec.key];
      (rec.side == Side::kR ? rs : ss).push_back(rec.seq);
    }
  }
  std::uint64_t expected = 0;
  for (const auto& [key, rs_ss] : by_key) {
    for (std::uint64_t r : rs_ss.first) {
      for (std::uint64_t s : rs_ss.second) {
        ++expected;
        MatchPair p;
        p.key = key;
        p.r_seq = r;
        p.s_seq = s;
        EXPECT_TRUE(log.contains(fingerprint(p)))
            << "missing pair key=" << key << " r=" << r << " s=" << s;
      }
    }
  }
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_EQ(log.unique(), expected);
  EXPECT_EQ(stats.results, expected);
}

TEST(LiveDataPlane, CrashesDuringBatchedPushesNeverDuplicate) {
  // Crashes + migrations concurrent with multi-producer batched pushes:
  // loss is allowed (bounded by checkpoint lag + lane residue), but a
  // duplicate match or a hung finish() is a protocol violation.
  LiveConfig cfg;
  cfg.instances = 3;
  cfg.balancer = true;
  cfg.planner.theta = 1.2;
  cfg.min_heaviest_load = 10.0;
  cfg.monitor_period = std::chrono::milliseconds(2);
  cfg.checkpoint_period = std::chrono::milliseconds(5);
  LiveEngine engine(cfg);
  MatchLog log;
  engine.set_on_match([&](const MatchPair& p) { log.add(p); });
  engine.start();

  std::atomic<bool> stop_chaos{false};
  std::thread chaos([&] {
    Xoshiro256 rng(4242);
    while (!stop_chaos.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      const Side g = rng.next_below(2) ? Side::kS : Side::kR;
      engine.crash(g, static_cast<InstanceId>(
                          rng.next_below(cfg.instances)));
    }
  });

  const int n_producers = 3;
  std::vector<std::vector<Record>> traces;
  for (int p = 0; p < n_producers; ++p) {
    traces.push_back(
        make_producer_trace(p, n_producers, 8'000, 300, 1.0));
  }
  feed_concurrently(engine, traces, 48);
  stop_chaos.store(true, std::memory_order_release);
  chaos.join();
  // Let the supervisor respawn any worker crashed after the feed so
  // finish() drains from a stable fleet.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto stats = engine.finish();
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_LE(stats.results, expected_pairs(traces));
  EXPECT_GT(stats.results, 0u);
  EXPECT_GT(stats.crashes, 0u);
  EXPECT_EQ(stats.recoveries, stats.crashes);
}

TEST(LiveDataPlane, SampledLatencyStatsStayPopulated) {
  // 1-in-N sampling must keep mean/p99 populated (satellite of the
  // sampled-clock optimization); N=0 disables measurement entirely.
  for (const std::uint32_t every : {std::uint32_t{16}, std::uint32_t{0}}) {
    LiveConfig cfg;
    cfg.instances = 2;
    cfg.balancer = false;
    cfg.latency_sample_every = every;
    LiveEngine engine(cfg);
    engine.start();
    const int id = engine.register_producer();
    const auto trace = make_producer_trace(0, 1, 6'000, 200, 0.8);
    engine.push_batch(trace, id);
    const auto stats = engine.finish();
    if (every == 0) {
      EXPECT_EQ(stats.latency_samples, 0u);
      EXPECT_EQ(stats.mean_latency_us, 0.0);
    } else {
      // Samples are taken per record pushed; only probe-side
      // deliveries measure, so expect roughly half of n/every.
      EXPECT_GT(stats.latency_samples, 0u);
      EXPECT_LE(stats.latency_samples, trace.size() / every + 1);
      EXPECT_GT(stats.mean_latency_us, 0.0);
      EXPECT_GT(stats.p99_latency_us, 0.0);
    }
  }
}

TEST(LiveDataPlane, LegacyLockedPlaneStillExact) {
  // The baseline data plane (global route lock + unified queue) must
  // remain correct: it is what the throughput bench compares against.
  LiveConfig cfg;
  cfg.instances = 3;
  cfg.balancer = true;
  cfg.planner.theta = 1.2;
  cfg.min_heaviest_load = 10.0;
  cfg.monitor_period = std::chrono::milliseconds(2);
  cfg.data_plane = DataPlane::kLegacyLocked;
  // No faults injected: keep the declare-dead backstop out of reach of
  // sanitizer slowdown (see MultiProducerBatchedExactlyOnceWithMigrations).
  cfg.migration_timeout = std::chrono::minutes(10);
  LiveEngine engine(cfg);
  MatchLog log;
  engine.set_on_match([&](const MatchPair& p) { log.add(p); });
  engine.start();

  const int n_producers = 2;
  std::vector<std::vector<Record>> traces;
  for (int p = 0; p < n_producers; ++p) {
    traces.push_back(
        make_producer_trace(p, n_producers, 6'000, 300, 1.0));
  }
  feed_concurrently(engine, traces, 32);
  const auto stats = engine.finish();
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_EQ(stats.results, expected_pairs(traces));
}

TEST(LiveDataPlane, ProducerRegistrationExhaustsToFallback) {
  LiveConfig cfg;
  cfg.instances = 2;
  cfg.balancer = false;
  cfg.max_producers = 2;
  LiveEngine engine(cfg);
  engine.start();
  EXPECT_EQ(engine.register_producer(), 0);
  EXPECT_EQ(engine.register_producer(), 1);
  // Slots exhausted: subsequent callers share the fallback lane.
  EXPECT_EQ(engine.register_producer(), LiveEngine::kUnregistered);

  // Unregistered pushes (single and batched) still deliver.
  const auto trace = make_producer_trace(0, 1, 2'000, 100, 0.8);
  EXPECT_EQ(engine.push_batch(trace, LiveEngine::kUnregistered),
            trace.size());
  EXPECT_TRUE(engine.push(trace.front()));
  const auto stats = engine.finish();
  EXPECT_EQ(stats.records_in, trace.size() + 1);
  EXPECT_EQ(stats.records_dropped, 0u);
}

}  // namespace
}  // namespace fastjoin
