// Multi-process plane end-to-end: real fork/exec workers over real
// sockets must produce byte-identical join output to the in-process
// laned plane — through clean runs, live migrations, and SIGKILL
// chaos with offset replay.
//
// This binary is its own worker: the router spawns /proc/self/exe with
// --multiproc-worker, and main() (below) routes those invocations into
// multiproc_worker_run before gtest ever initializes.
#include "runtime/multiproc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>

#include "datagen/keygen.hpp"
#include "runtime/live_engine.hpp"

namespace fastjoin {
namespace {

std::vector<Record> make_trace(std::uint64_t seed, int total,
                               int num_keys, double zipf) {
  KeyStreamSpec spec;
  spec.num_keys = num_keys;
  spec.zipf_s = zipf;
  spec.seed = seed;
  KeyGenerator gen(spec);
  Xoshiro256 rng(seed ^ 0xbeef);
  std::vector<Record> out;
  std::uint64_t r_seq = 0, s_seq = 0;
  for (int i = 0; i < total; ++i) {
    Record rec;
    rec.side = rng.next_below(2) ? Side::kS : Side::kR;
    rec.key = gen();
    rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
    rec.ts = i;  // strictly increasing: a total order over the feed
    rec.payload = i;
    out.push_back(rec);
  }
  return out;
}

using PairKey = std::tuple<KeyId, std::uint64_t, std::uint64_t>;

std::vector<PairKey> canonical(std::vector<MatchPair> pairs) {
  std::vector<PairKey> out;
  out.reserve(pairs.size());
  for (const auto& p : pairs) out.emplace_back(p.key, p.r_seq, p.s_seq);
  std::sort(out.begin(), out.end());
  return out;
}

/// The ground-truth pair set: with strictly increasing ts, every (r, s)
/// record pair sharing a key matches exactly once.
std::vector<PairKey> expected_pair_set(const std::vector<Record>& trace) {
  std::map<KeyId, std::pair<std::vector<std::uint64_t>,
                            std::vector<std::uint64_t>>> by_key;
  for (const auto& rec : trace) {
    auto& [r, s] = by_key[rec.key];
    (rec.side == Side::kR ? r : s).push_back(rec.seq);
  }
  std::vector<PairKey> out;
  for (const auto& [k, rs] : by_key) {
    for (const auto r : rs.first) {
      for (const auto s : rs.second) out.emplace_back(k, r, s);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// In-process laned plane on the same trace, pairs collected.
std::vector<PairKey> inproc_reference(const std::vector<Record>& trace,
                                      std::uint32_t instances) {
  LiveConfig cfg;
  cfg.instances = instances;
  cfg.balancer = false;
  LiveEngine engine(cfg);
  std::mutex mu;
  std::vector<MatchPair> pairs;
  engine.set_on_match([&](const MatchPair& p) {
    std::lock_guard<std::mutex> lk(mu);
    pairs.push_back(p);
  });
  engine.start();
  for (const auto& rec : trace) engine.push(rec);
  engine.finish();
  return canonical(std::move(pairs));
}

MultiprocConfig base_config(std::uint32_t workers) {
  MultiprocConfig cfg;
  cfg.workers = workers;
  cfg.worker_command = {"/proc/self/exe"};
  cfg.collect_matches = true;
  return cfg;
}

TEST(Multiproc, ByteIdenticalToInprocFourWorkers) {
  const auto trace = make_trace(11, 12'000, 400, 1.1);
  const auto expected = expected_pair_set(trace);
  const auto inproc = inproc_reference(trace, 4);
  ASSERT_EQ(inproc, expected) << "in-process plane disagrees with ground truth";

  MultiprocRouter router(base_config(4));
  std::string err;
  ASSERT_TRUE(router.start(&err)) << err;
  for (const auto& rec : trace) router.publish(rec);
  ASSERT_TRUE(router.finish());
  EXPECT_EQ(router.stats().records_dropped, 0u);
  EXPECT_EQ(canonical(router.take_matches()), inproc);
}

TEST(Multiproc, TcpTransportSmoke) {
  const auto trace = make_trace(13, 4'000, 200, 1.0);
  auto cfg = base_config(2);
  cfg.endpoint = "tcp:0";
  MultiprocRouter router(std::move(cfg));
  std::string err;
  ASSERT_TRUE(router.start(&err)) << err;
  EXPECT_EQ(router.endpoint().rfind("tcp:", 0), 0u);
  EXPECT_NE(router.endpoint(), "tcp:0") << "resolved port expected";
  for (const auto& rec : trace) router.publish(rec);
  ASSERT_TRUE(router.finish());
  EXPECT_EQ(router.stats().records_dropped, 0u);
  EXPECT_EQ(canonical(router.take_matches()), expected_pair_set(trace));
}

TEST(Multiproc, SigkillMidRunReplaysExactly) {
  const auto trace = make_trace(17, 10'000, 300, 1.1);
  auto cfg = base_config(4);
  cfg.checkpoint_every = 1'500;
  MultiprocRouter router(std::move(cfg));
  std::string err;
  ASSERT_TRUE(router.start(&err)) << err;
  std::size_t i = 0;
  for (const auto& rec : trace) {
    router.publish(rec);
    if (++i == trace.size() / 3) router.kill_worker(1);
    if (i == 2 * trace.size() / 3) router.kill_worker(3);
  }
  ASSERT_TRUE(router.finish());
  const auto& st = router.stats();
  EXPECT_EQ(st.worker_crashes, 2u);
  EXPECT_EQ(st.respawns, 2u);
  EXPECT_EQ(st.records_dropped, 0u);
  EXPECT_GT(st.replayed_entries, 0u);
  // The strong claim: despite two SIGKILLs, the emitted pair set is
  // exactly the ground truth — replay resent what was lost, the emit
  // watermark suppressed what was already delivered.
  EXPECT_EQ(canonical(router.take_matches()), expected_pair_set(trace));
}

TEST(Multiproc, RepeatedSigkillOfSameWorker) {
  const auto trace = make_trace(19, 8'000, 200, 1.2);
  auto cfg = base_config(2);
  cfg.checkpoint_every = 1'000;
  MultiprocRouter router(std::move(cfg));
  std::string err;
  ASSERT_TRUE(router.start(&err)) << err;
  std::size_t i = 0;
  for (const auto& rec : trace) {
    router.publish(rec);
    // Kill worker 0 three times; it must come back each time.
    if (++i % 2'000 == 0 && i < 7'000) {
      ASSERT_TRUE(router.kill_worker(0)) << "kill " << i;
    }
  }
  ASSERT_TRUE(router.finish());
  EXPECT_EQ(router.stats().worker_crashes, 3u);
  EXPECT_EQ(router.stats().records_dropped, 0u);
  EXPECT_EQ(canonical(router.take_matches()), expected_pair_set(trace));
}

TEST(Multiproc, MigrationMovesOwnershipExactly) {
  const auto trace = make_trace(23, 10'000, 300, 1.2);
  MultiprocRouter router(base_config(4));
  std::string err;
  ASSERT_TRUE(router.start(&err)) << err;

  KeyStreamSpec spec;
  spec.num_keys = 300;
  spec.zipf_s = 1.2;
  spec.seed = 23;
  KeyGenerator gen(spec);

  std::size_t i = 0;
  std::vector<std::pair<Side, KeyId>> moved;
  for (const auto& rec : trace) {
    router.publish(rec);
    if (++i == trace.size() / 2) {
      // Migrate the 6 hottest keys (both sides for the first two) off
      // their owners mid-stream.
      for (std::uint64_t rank = 1; rank <= 6; ++rank) {
        const KeyId k = gen.key_for_rank(rank);
        const Side side = rank <= 2 ? Side::kS : Side::kR;
        const std::uint32_t from = router.owner(side, k);
        ASSERT_TRUE(router.request_migration(side, from, (from + 1) % 4,
                                             {k}));
        moved.emplace_back(side, k);
      }
    }
  }
  ASSERT_TRUE(router.finish());
  const auto& st = router.stats();
  EXPECT_EQ(st.migrations_completed, 6u);
  EXPECT_GT(st.tuples_migrated, 0u);
  EXPECT_EQ(st.records_dropped, 0u);
  for (const auto& [side, k] : moved) {
    EXPECT_NE(router.owner(side, k), instance_of(k, 4))
        << "override not installed for key " << k;
  }
  EXPECT_EQ(canonical(router.take_matches()), expected_pair_set(trace));
}

TEST(Multiproc, SigkillDuringMigrationWindow) {
  const auto trace = make_trace(29, 10'000, 250, 1.2);
  auto cfg = base_config(4);
  cfg.checkpoint_every = 1'200;
  MultiprocRouter router(std::move(cfg));
  std::string err;
  ASSERT_TRUE(router.start(&err)) << err;

  KeyStreamSpec spec;
  spec.num_keys = 250;
  spec.zipf_s = 1.2;
  spec.seed = 29;
  KeyGenerator gen(spec);
  const KeyId hot = gen.key_for_rank(1);

  std::size_t i = 0;
  for (const auto& rec : trace) {
    router.publish(rec);
    ++i;
    if (i == trace.size() / 2) {
      const std::uint32_t from = router.owner(Side::kR, hot);
      ASSERT_TRUE(
          router.request_migration(Side::kR, from, (from + 1) % 4, {hot}));
      // Immediately SIGKILL the migration target: the move must abort
      // or complete, and either way no record may be lost.
      router.kill_worker((from + 1) % 4);
    }
  }
  ASSERT_TRUE(router.finish());
  const auto& st = router.stats();
  EXPECT_GE(st.worker_crashes, 1u);
  EXPECT_EQ(st.records_dropped, 0u);
  EXPECT_EQ(canonical(router.take_matches()), expected_pair_set(trace));
}

TEST(Multiproc, NoRespawnAccountsDrops) {
  const auto trace = make_trace(31, 4'000, 100, 1.0);
  auto cfg = base_config(2);
  cfg.respawn = false;
  MultiprocRouter router(std::move(cfg));
  std::string err;
  ASSERT_TRUE(router.start(&err)) << err;
  std::size_t i = 0;
  for (const auto& rec : trace) {
    router.publish(rec);
    if (++i == trace.size() / 2) router.kill_worker(1);
  }
  router.finish();
  const auto& st = router.stats();
  EXPECT_EQ(st.worker_crashes, 1u);
  EXPECT_EQ(st.respawns, 0u);
  // Honest accounting: without respawn the dead shard's deliveries are
  // gone and must be counted, not hidden.
  EXPECT_GT(st.records_dropped, 0u);
}

TEST(Multiproc, FileBackedLogSurvives) {
  const auto trace = make_trace(37, 5'000, 150, 1.1);
  auto cfg = base_config(2);
  cfg.ingest.backend = SegmentBackend::kFile;
  cfg.ingest.dir =
      ::testing::TempDir() + "fastjoin-mp-log-" + std::to_string(::getpid());
  cfg.checkpoint_every = 1'000;
  MultiprocRouter router(std::move(cfg));
  std::string err;
  ASSERT_TRUE(router.start(&err)) << err;
  std::size_t i = 0;
  for (const auto& rec : trace) {
    router.publish(rec);
    if (++i == trace.size() / 2) router.kill_worker(0);
  }
  ASSERT_TRUE(router.finish());
  EXPECT_EQ(router.stats().records_dropped, 0u);
  EXPECT_EQ(canonical(router.take_matches()), expected_pair_set(trace));
}

}  // namespace
}  // namespace fastjoin

int main(int argc, char** argv) {
  // Worker re-entry: the router execs this same binary with
  // --multiproc-worker; hand those straight to the worker loop.
  const int rc = fastjoin::multiproc_worker_maybe_run(argc, argv);
  if (rc >= 0) return rc;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
