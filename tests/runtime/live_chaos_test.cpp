// Chaos tests for the live runtime: workers are crashed at precise
// migration-protocol points (via LiveConfig::chaos) and at random, and
// the engine must (a) never emit a duplicate match, (b) lose at most a
// bounded window of records, (c) recover crashed workers from
// checkpoints, and (d) never deadlock the monitor thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "runtime/live_engine.hpp"

#include "datagen/keygen.hpp"
#include "telemetry/metrics.hpp"

namespace fastjoin {
namespace {

/// Snapshot of the global live.recoveries counter, taken before a
/// crash is injected so wait_for_recoveries can observe the delta (the
/// registry is process-global, so absolute values accumulate across
/// tests in the same binary).
std::uint64_t recoveries_now() {
  return telemetry::MetricRegistry::global().counter("live.recoveries").value();
}

/// Wait (bounded) until the supervisor has logged `want` respawns past
/// `before`. A fixed post-crash sleep is a race under sanitizer
/// slowdown: the 2ms-period monitor may not get scheduled, let alone
/// finish the store rebuild, before finish() closes the feed. With
/// FASTJOIN_NO_TELEMETRY the stub counter reads 0 forever, so fall
/// back to a fixed 100ms grace sleep — generous at native speed, and
/// the notel leg does not run under sanitizers.
void wait_for_recoveries(std::uint64_t before, std::uint64_t want = 1) {
#ifdef FASTJOIN_NO_TELEMETRY
  (void)before;
  (void)want;
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
#else
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (recoveries_now() >= before + want) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
#endif
  // Let the respawned worker re-enter its drain loop before the caller
  // proceeds (the counter ticks when the respawn is published).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

std::vector<Record> make_trace(std::uint64_t seed, int total,
                               int num_keys, double zipf) {
  KeyStreamSpec spec;
  spec.num_keys = num_keys;
  spec.zipf_s = zipf;
  spec.seed = seed;
  KeyGenerator gen(spec);
  Xoshiro256 rng(seed ^ 0xbeef);
  std::vector<Record> out;
  std::uint64_t r_seq = 0, s_seq = 0;
  for (int i = 0; i < total; ++i) {
    Record rec;
    rec.side = rng.next_below(2) ? Side::kS : Side::kR;
    rec.key = gen();
    rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
    rec.ts = i;
    rec.payload = i;
    out.push_back(rec);
  }
  return out;
}

std::uint64_t expected_pairs(const std::vector<Record>& trace) {
  std::map<KeyId, std::pair<std::uint64_t, std::uint64_t>> counts;
  for (const auto& rec : trace) {
    auto& [r, s] = counts[rec.key];
    (rec.side == Side::kR ? r : s)++;
  }
  std::uint64_t total = 0;
  for (const auto& [_, rs] : counts) total += rs.first * rs.second;
  return total;
}

/// Duplicate detector shared by every chaos scenario. Pairs are folded
/// to 64-bit fingerprints (splitmix64 over key/r_seq/s_seq) so skewed
/// traces with millions of matches stay cheap to dedupe; a collision
/// falsely flagging a duplicate has probability ~n^2/2^64.
class MatchLog {
 public:
  void attach(LiveEngine& engine) {
    engine.set_on_match([this](const MatchPair& p) {
      const std::uint64_t fp =
          mix(mix(p.key) ^ mix(p.r_seq * 0x9e3779b97f4a7c15ull) ^
              mix(p.s_seq + 0xbf58476d1ce4e5b9ull));
      std::lock_guard<std::mutex> lock(mu_);
      if (!seen_.insert(fp).second) ++duplicates_;
    });
  }
  std::size_t duplicates() const {
    std::lock_guard<std::mutex> lock(mu_);
    return duplicates_;
  }
  std::size_t unique() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_.size();
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  mutable std::mutex mu_;
  std::unordered_set<std::uint64_t> seen_;
  std::size_t duplicates_ = 0;
};

TEST(LiveChaos, CrashAndRecoverFromCheckpoint) {
  LiveConfig cfg;
  cfg.instances = 2;
  cfg.balancer = false;
  cfg.monitor_period = std::chrono::milliseconds(2);
  cfg.checkpoint_period = std::chrono::milliseconds(5);
  LiveEngine engine(cfg);
  MatchLog log;
  log.attach(engine);
  engine.start();

  const auto trace = make_trace(21, 20'000, 200, 1.0);
  const std::uint64_t expected = expected_pairs(trace);
  const std::uint64_t before = recoveries_now();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    engine.push(trace[i]);
    if (i == trace.size() / 2) {
      // Let a checkpoint land, then kill a worker mid-stream.
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      engine.crash(Side::kR, 0);
    }
    if (i % 2000 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  }
  // Let the supervisor respawn before the feed closes.
  wait_for_recoveries(before);
  const auto stats = engine.finish();

  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_GT(stats.checkpoints, 0u);
  EXPECT_GT(stats.tuples_restored, 0u);
  EXPECT_GT(stats.mean_recovery_ms, 0.0);
  EXPECT_EQ(log.duplicates(), 0u);
  // Bounded loss: everything outside the crash window survives.
  EXPECT_LE(log.unique(), expected);
  EXPECT_GE(log.unique(), expected / 2);
  EXPECT_EQ(stats.results, log.unique());
}

TEST(LiveChaos, CrashWithoutCheckpointLosesStoreButNoDuplicates) {
  LiveConfig cfg;
  cfg.instances = 2;
  cfg.balancer = false;
  cfg.monitor_period = std::chrono::milliseconds(2);
  cfg.checkpoint_period = std::chrono::milliseconds(0);  // off
  LiveEngine engine(cfg);
  MatchLog log;
  log.attach(engine);
  engine.start();

  const auto trace = make_trace(22, 10'000, 100, 1.0);
  const std::uint64_t before = recoveries_now();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    engine.push(trace[i]);
    if (i == trace.size() / 2) engine.crash(Side::kS, 1);
  }
  wait_for_recoveries(before);
  const auto stats = engine.finish();

  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.tuples_restored, 0u);
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_LE(log.unique(), expected_pairs(trace));
}

/// Crash one migration endpoint at one protocol phase; the engine must
/// finish with zero duplicates and recover the victim. `expect_abort`:
/// a dead target forces an explicit abort when the crash is discovered
/// at the next send to it (kSelected -> Hold fails, kForwarded ->
/// Absorb fails); at the other phases the supervisor may respawn the
/// target before Absorb, in which case the migration rolls forward.
/// With `with_ingest` the StreamLog replay path is on, which upgrades
/// the loss bound: records_dropped must be exactly 0 (residual loss is
/// confined to LiveStats::buffered_lost, records that died inside
/// migration machinery).
void run_phase_crash(MigrationPhase phase, bool crash_src,
                     bool expect_abort = false, bool with_ingest = false) {
  LiveConfig cfg;
  cfg.instances = 4;
  cfg.balancer = true;
  cfg.planner.theta = 1.2;
  cfg.min_heaviest_load = 10.0;
  cfg.monitor_period = std::chrono::milliseconds(1);
  cfg.checkpoint_period = std::chrono::milliseconds(5);
  // Injected crashes are discovered fast (closed queues); the timeout only
  // fires when a live worker is merely slow. Keep it generous so sanitizer
  // slowdown can't spuriously declare the source dead and roll the migration
  // forward before the injected crash lands — that would make the
  // expect_abort assertion below unsatisfiable.
  cfg.migration_timeout = std::chrono::milliseconds(10'000);
  cfg.ingest.enabled = with_ingest;

  LiveEngine* eng = nullptr;
  std::atomic<bool> fired{false};
  cfg.chaos = [&](Side group, InstanceId src, InstanceId dst,
                  MigrationPhase at) {
    // Firings after finish() began inject nothing (crash() is a no-op
    // then), so they must not satisfy the wait loop below.
    if (at != phase || !eng->running()) return;
    if (fired.exchange(true)) return;  // one crash per scenario
    eng->crash(group, crash_src ? src : dst);
  };

  LiveEngine engine(cfg);
  eng = &engine;
  MatchLog log;
  log.attach(engine);
  engine.start();

  // Moderate skew keeps the match volume (and so worker backlogs and
  // migration-reply latency) small while stored-count imbalance still
  // trips theta reliably.
  const auto trace = make_trace(23, 15'000, 200, 0.9);
  for (const auto& rec : trace) engine.push(rec);
  // Keep the engine alive until the targeted phase actually fires (the
  // monitor needs a few ticks of load statistics before it migrates).
  for (int i = 0; i < 1'000 && !fired.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Give the supervisor time to abort the migration and respawn.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto stats = engine.finish();

  SCOPED_TRACE(std::string("phase=") + migration_phase_name(phase) +
               " victim=" + (crash_src ? "src" : "dst") +
               (with_ingest ? " ingest" : ""));
  EXPECT_TRUE(fired.load()) << "no migration fired; chaos hook unused";
  // Exactly one injected crash; a heavily backlogged worker may also be
  // declared dead by the migration timeout, hence >= not ==.
  EXPECT_GE(stats.crashes, 1u);
  EXPECT_GE(stats.recoveries, 1u);
  EXPECT_EQ(log.duplicates(), 0u);
  const std::uint64_t expected = expected_pairs(trace);
  EXPECT_LE(log.unique(), expected);
  EXPECT_GE(log.unique(), expected / 2);  // bounded loss
  if (expect_abort) {
    EXPECT_GE(stats.migrations_aborted, 1u);
  }
  if (with_ingest) {
    // The replay upgrade: no delivery is ever dropped, at any protocol
    // phase. What the crash can still eat is records inside migration
    // machinery, reported (bounded) as buffered_lost, never duplicated.
    EXPECT_EQ(stats.records_dropped, 0u);
    EXPECT_EQ(stats.ingest_appended, stats.records_in);
  }
}

TEST(LiveChaos, SrcCrashBeforeHold) {
  run_phase_crash(MigrationPhase::kSelected, /*crash_src=*/true);
}
TEST(LiveChaos, DstCrashBeforeHold) {
  run_phase_crash(MigrationPhase::kSelected, /*crash_src=*/false,
                  /*expect_abort=*/true);
}
TEST(LiveChaos, SrcCrashBetweenHoldAndRouting) {
  run_phase_crash(MigrationPhase::kHeld, /*crash_src=*/true);
}
TEST(LiveChaos, DstCrashBetweenHoldAndRouting) {
  run_phase_crash(MigrationPhase::kHeld, /*crash_src=*/false);
}
TEST(LiveChaos, SrcCrashBetweenRoutingAndTakeForward) {
  run_phase_crash(MigrationPhase::kRouted, /*crash_src=*/true);
}
TEST(LiveChaos, DstCrashBetweenRoutingAndTakeForward) {
  run_phase_crash(MigrationPhase::kRouted, /*crash_src=*/false);
}
TEST(LiveChaos, SrcCrashDuringAbsorb) {
  run_phase_crash(MigrationPhase::kForwarded, /*crash_src=*/true);
}
TEST(LiveChaos, DstCrashDuringAbsorb) {
  run_phase_crash(MigrationPhase::kForwarded, /*crash_src=*/false,
                  /*expect_abort=*/true);
}

// The same eight protocol-point crashes with StreamLog replay enabled:
// every one must finish with records_dropped == 0 and zero duplicates.
TEST(LiveChaosReplay, SrcCrashBeforeHold) {
  run_phase_crash(MigrationPhase::kSelected, /*crash_src=*/true,
                  /*expect_abort=*/false, /*with_ingest=*/true);
}
TEST(LiveChaosReplay, DstCrashBeforeHold) {
  run_phase_crash(MigrationPhase::kSelected, /*crash_src=*/false,
                  /*expect_abort=*/true, /*with_ingest=*/true);
}
TEST(LiveChaosReplay, SrcCrashBetweenHoldAndRouting) {
  run_phase_crash(MigrationPhase::kHeld, /*crash_src=*/true,
                  /*expect_abort=*/false, /*with_ingest=*/true);
}
TEST(LiveChaosReplay, DstCrashBetweenHoldAndRouting) {
  run_phase_crash(MigrationPhase::kHeld, /*crash_src=*/false,
                  /*expect_abort=*/false, /*with_ingest=*/true);
}
TEST(LiveChaosReplay, SrcCrashBetweenRoutingAndTakeForward) {
  run_phase_crash(MigrationPhase::kRouted, /*crash_src=*/true,
                  /*expect_abort=*/false, /*with_ingest=*/true);
}
TEST(LiveChaosReplay, DstCrashBetweenRoutingAndTakeForward) {
  run_phase_crash(MigrationPhase::kRouted, /*crash_src=*/false,
                  /*expect_abort=*/false, /*with_ingest=*/true);
}
TEST(LiveChaosReplay, SrcCrashDuringAbsorb) {
  run_phase_crash(MigrationPhase::kForwarded, /*crash_src=*/true,
                  /*expect_abort=*/false, /*with_ingest=*/true);
}
TEST(LiveChaosReplay, DstCrashDuringAbsorb) {
  run_phase_crash(MigrationPhase::kForwarded, /*crash_src=*/false,
                  /*expect_abort=*/true, /*with_ingest=*/true);
}

// Regression: a migration batch lives in monitor memory while the
// protocol runs. If the source crashes in that window, its respawn
// regenerates the extracted tuples from checkpoint + log replay
// (routing still points at it); re-injecting the batch afterwards —
// the Absorb-failure abort re-merge here — must sequence-dedup against
// the regenerated store or every later probe of the migrated (hot)
// keys emits duplicate matches. Crash the source at Selected and the
// target at Held to force that ordering, then keep pushing so the
// re-merged keys are probed again.
TEST(LiveChaosReplay, AbortReinjectionAfterSourceRespawn) {
  LiveConfig cfg;
  cfg.instances = 4;
  cfg.balancer = true;
  cfg.planner.theta = 1.2;
  cfg.min_heaviest_load = 10.0;
  cfg.monitor_period = std::chrono::milliseconds(1);
  cfg.checkpoint_period = std::chrono::milliseconds(5);
  cfg.migration_timeout = std::chrono::milliseconds(2000);
  cfg.ingest.enabled = true;

  LiveEngine* eng = nullptr;
  std::atomic<bool> src_fired{false};
  std::atomic<bool> dst_fired{false};
  cfg.chaos = [&](Side group, InstanceId src, InstanceId dst,
                  MigrationPhase at) {
    if (!eng->running()) return;
    if (at == MigrationPhase::kSelected && !src_fired.exchange(true)) {
      eng->crash(group, src);
    } else if (at == MigrationPhase::kHeld &&
               !dst_fired.exchange(true)) {
      eng->crash(group, dst);
    }
  };

  LiveEngine engine(cfg);
  eng = &engine;
  MatchLog log;
  log.attach(engine);
  engine.start();

  const auto trace = make_trace(29, 20'000, 200, 0.9);
  const std::size_t first_wave = trace.size() * 3 / 4;
  for (std::size_t i = 0; i < first_wave; ++i) engine.push(trace[i]);
  for (int i = 0; i < 1'000 && !(src_fired.load() && dst_fired.load());
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Second wave: probes for the re-merged keys after the abort.
  for (std::size_t i = first_wave; i < trace.size(); ++i) {
    engine.push(trace[i]);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto stats = engine.finish();

  EXPECT_TRUE(src_fired.load()) << "no migration fired";
  EXPECT_GE(stats.crashes, 2u);
  EXPECT_GE(stats.recoveries, 2u);
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_EQ(stats.records_dropped, 0u);
  const std::uint64_t expected = expected_pairs(trace);
  EXPECT_LE(log.unique(), expected);
  EXPECT_GE(log.unique(), expected / 2);
}

// --- Double-fault matrix: a second crash lands while the first one's
// recovery (replay or checkpoint) is still in flight. With ingest
// replay on, the drop ledger must stay exact through both faults:
// records_dropped == 0 (every delivery is either served once or
// re-driven from the log), zero duplicate emissions, and the
// supervisor must recover both victims without wedging. ---------------

enum class SecondFault {
  /// Crash the *other* migration endpoint at the same phase: the
  /// second victim dies while the supervisor is inside the first
  /// victim's respawn/replay (supervise() runs in the await loops), so
  /// replay deliveries retargeted at it die in its queue and must be
  /// salvaged, not leaked.
  kOtherEndpointDuringReplay,
  /// Crash a bystander after the next checkpoint round lands: the
  /// second recovery restores from a snapshot taken between the two
  /// faults, exercising checkpoint + replay layering.
  kBystanderDuringCheckpoint,
};

void run_double_fault(MigrationPhase phase, SecondFault mode) {
  LiveConfig cfg;
  cfg.instances = 4;
  cfg.balancer = true;
  cfg.planner.theta = 1.2;
  cfg.min_heaviest_load = 10.0;
  cfg.monitor_period = std::chrono::milliseconds(1);
  cfg.checkpoint_period = std::chrono::milliseconds(5);
  cfg.migration_timeout = std::chrono::milliseconds(2000);
  cfg.ingest.enabled = true;

  LiveEngine* eng = nullptr;
  std::atomic<bool> first_fired{false};
  std::atomic<bool> second_fired{false};
  std::atomic<int> victim_group{-1};
  std::atomic<std::uint32_t> bystander{0};
  cfg.chaos = [&](Side group, InstanceId src, InstanceId dst,
                  MigrationPhase at) {
    if (at != phase || !eng->running()) return;
    if (!first_fired.exchange(true)) {
      victim_group = static_cast<int>(group);
      for (InstanceId w = 0; w < cfg.instances; ++w) {
        if (w != src && w != dst) bystander = w;
      }
      eng->crash(group, dst);
      if (mode == SecondFault::kOtherEndpointDuringReplay &&
          !second_fired.exchange(true)) {
        // The monitor discovers the dead target inside its next
        // supervised wait and respawns it there; the source dies with
        // that recovery (and any replay deliveries re-routed to it)
        // in flight.
        eng->crash(group, src);
      }
    }
  };

  LiveEngine engine(cfg);
  eng = &engine;
  MatchLog log;
  log.attach(engine);
  engine.start();

  const auto trace = make_trace(27, 15'000, 200, 0.9);
  for (const auto& rec : trace) engine.push(rec);
  for (int i = 0; i < 1'000 && !first_fired.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (mode == SecondFault::kBystanderDuringCheckpoint &&
      first_fired.load() && !second_fired.exchange(true)) {
    // Let at least one checkpoint round land between the two faults.
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    engine.crash(static_cast<Side>(victim_group.load()),
                 bystander.load());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const auto stats = engine.finish();

  SCOPED_TRACE(std::string("phase=") + migration_phase_name(phase) +
               (mode == SecondFault::kOtherEndpointDuringReplay
                    ? " second=src-during-replay"
                    : " second=bystander-during-checkpoint"));
  EXPECT_TRUE(first_fired.load()) << "no migration fired";
  EXPECT_GE(stats.crashes, 2u);
  EXPECT_GE(stats.recoveries, 2u);
  EXPECT_EQ(log.duplicates(), 0u);
  // Ledger exactness through the double fault: the log re-drives every
  // delivery, so the only permissible loss is records that died inside
  // migration machinery (buffered_lost), never silent drops.
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(stats.ingest_appended, stats.records_in);
  const std::uint64_t expected = expected_pairs(trace);
  EXPECT_LE(log.unique(), expected);
  EXPECT_GE(log.unique(), expected / 2);
}

TEST(LiveChaosDoubleFault, SelectedThenSrcDuringReplay) {
  run_double_fault(MigrationPhase::kSelected,
                   SecondFault::kOtherEndpointDuringReplay);
}
TEST(LiveChaosDoubleFault, HeldThenSrcDuringReplay) {
  run_double_fault(MigrationPhase::kHeld,
                   SecondFault::kOtherEndpointDuringReplay);
}
TEST(LiveChaosDoubleFault, RoutedThenSrcDuringReplay) {
  run_double_fault(MigrationPhase::kRouted,
                   SecondFault::kOtherEndpointDuringReplay);
}
TEST(LiveChaosDoubleFault, ForwardedThenSrcDuringReplay) {
  run_double_fault(MigrationPhase::kForwarded,
                   SecondFault::kOtherEndpointDuringReplay);
}
TEST(LiveChaosDoubleFault, SelectedThenBystanderDuringCheckpoint) {
  run_double_fault(MigrationPhase::kSelected,
                   SecondFault::kBystanderDuringCheckpoint);
}
TEST(LiveChaosDoubleFault, HeldThenBystanderDuringCheckpoint) {
  run_double_fault(MigrationPhase::kHeld,
                   SecondFault::kBystanderDuringCheckpoint);
}
TEST(LiveChaosDoubleFault, RoutedThenBystanderDuringCheckpoint) {
  run_double_fault(MigrationPhase::kRouted,
                   SecondFault::kBystanderDuringCheckpoint);
}
TEST(LiveChaosDoubleFault, ForwardedThenBystanderDuringCheckpoint) {
  run_double_fault(MigrationPhase::kForwarded,
                   SecondFault::kBystanderDuringCheckpoint);
}

// Regression for the double-fault replay path in respawn(): a worker
// dies while a dead peer's replay deliveries (ReplayReq) are still
// queued at it. Those deliveries came out of the log and are
// idempotent, so the drain must salvage and re-route them to each
// key's current owner (or park them for the slot's own respawn) — not
// count them as losses and not leak them. Rapid same-side crash pairs
// under ingest make that window easy to hit; the ledger must stay
// exact regardless.
TEST(LiveChaosReplay, DoubleFaultSalvagesQueuedReplayDeliveries) {
  LiveConfig cfg;
  cfg.instances = 3;
  cfg.balancer = true;
  cfg.planner.theta = 1.2;
  cfg.min_heaviest_load = 10.0;
  cfg.monitor_period = std::chrono::milliseconds(1);
  cfg.checkpoint_period = std::chrono::milliseconds(4);
  cfg.migration_timeout = std::chrono::milliseconds(2000);
  cfg.ingest.enabled = true;
  LiveEngine engine(cfg);
  MatchLog log;
  log.attach(engine);
  engine.start();

  const auto trace = make_trace(28, 30'000, 200, 1.1);
  Xoshiro256 rng(77);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    engine.push(trace[i]);
    if (i % 6'000 == 5'999) {
      // Two crashes on the same side back to back: the second victim
      // is a prime retarget destination for the first one's replay.
      const Side side = static_cast<Side>(rng.next_below(2));
      const InstanceId a =
          static_cast<InstanceId>(rng.next_below(cfg.instances));
      const InstanceId b = static_cast<InstanceId>((a + 1) % cfg.instances);
      engine.crash(side, a);
      engine.crash(side, b);
      std::this_thread::sleep_for(std::chrono::milliseconds(8));
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto stats = engine.finish();

  EXPECT_GE(stats.crashes, 4u);
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_LE(log.unique(), expected_pairs(trace));
}

TEST(LiveChaosReplay, RandomCrashesUnderBalancerLoseNoDeliveries) {
  LiveConfig cfg;
  cfg.instances = 3;
  cfg.balancer = true;
  cfg.planner.theta = 1.2;
  cfg.min_heaviest_load = 10.0;
  cfg.monitor_period = std::chrono::milliseconds(1);
  cfg.checkpoint_period = std::chrono::milliseconds(4);
  cfg.migration_timeout = std::chrono::milliseconds(2000);
  cfg.ingest.enabled = true;
  LiveEngine engine(cfg);
  MatchLog log;
  log.attach(engine);
  engine.start();

  const auto trace = make_trace(26, 30'000, 200, 1.2);
  Xoshiro256 rng(101);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    engine.push(trace[i]);
    if (i % 5'000 == 4'999) {
      engine.crash(static_cast<Side>(rng.next_below(2)),
                   static_cast<InstanceId>(rng.next_below(cfg.instances)));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto stats = engine.finish();

  EXPECT_GE(stats.crashes, 3u);
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_LE(log.unique(), expected_pairs(trace));
}

// --- Drop-ledger audits: every records_dropped path counts exact
// delivery units (a record = 2 deliveries, store + probe). -------------

TEST(LiveChaos, NotRunningPushDropsBothDeliveries) {
  LiveConfig cfg;
  cfg.instances = 2;
  cfg.balancer = false;
  LiveEngine engine(cfg);
  Record rec;
  rec.side = Side::kR;
  rec.key = 3;
  // k pre-start pushes: both deliveries of each record are lost.
  for (int i = 0; i < 5; ++i) {
    rec.seq = i;
    EXPECT_FALSE(engine.push(rec));
  }
  engine.start();
  const auto stats = engine.finish();
  EXPECT_EQ(stats.records_dropped, 10u);
  EXPECT_EQ(stats.records_in, 0u);
}

TEST(LiveChaos, DeadLaneDropsExactlyTheFailedDelivery) {
  LiveConfig cfg;
  cfg.instances = 2;
  cfg.balancer = false;
  // Slow supervisor: the crashed side stays down for the whole test.
  cfg.monitor_period = std::chrono::milliseconds(1000);
  LiveEngine engine(cfg);
  engine.start();
  engine.crash(Side::kR, 0);
  engine.crash(Side::kR, 1);  // whole R side down
  // k R-side records: each loses its store delivery (R side) but its
  // probe delivery (S side) still lands — exactly k drops.
  Record rec;
  rec.side = Side::kR;
  for (std::uint64_t i = 0; i < 100; ++i) {
    rec.key = i;
    rec.seq = i;
    EXPECT_FALSE(engine.push(rec));  // partial delivery = failure
  }
  const auto stats = engine.finish();
  EXPECT_EQ(stats.records_dropped, 100u);
  EXPECT_EQ(stats.records_in, 100u);
  EXPECT_EQ(stats.crashes, 2u);
}

TEST(LiveChaos, LegacyDeadQueueDropsExactlyTheFailedDelivery) {
  LiveConfig cfg;
  cfg.instances = 2;
  cfg.balancer = false;
  cfg.data_plane = DataPlane::kLegacyLocked;
  cfg.monitor_period = std::chrono::milliseconds(1000);
  LiveEngine engine(cfg);
  engine.start();
  engine.crash(Side::kS, 0);
  engine.crash(Side::kS, 1);
  Record rec;
  rec.side = Side::kS;  // store delivery dies, probe (R side) lands
  for (std::uint64_t i = 0; i < 100; ++i) {
    rec.key = i;
    rec.seq = i;
    EXPECT_FALSE(engine.push(rec));
  }
  const auto stats = engine.finish();
  EXPECT_EQ(stats.records_dropped, 100u);
  EXPECT_EQ(stats.records_in, 100u);
}

TEST(LiveChaos, DropsAreCountedWhileWorkerIsDown) {
  LiveConfig cfg;
  cfg.instances = 2;
  cfg.balancer = false;
  // Slow supervisor: the dead worker stays down while we keep pushing.
  cfg.monitor_period = std::chrono::milliseconds(100);
  LiveEngine engine(cfg);
  engine.start();

  const auto trace = make_trace(24, 4'000, 50, 1.0);
  for (std::size_t i = 0; i < 2'000; ++i) engine.push(trace[i]);
  engine.crash(Side::kR, 0);
  engine.crash(Side::kR, 1);  // the whole R side is down
  std::size_t rejected = 0;
  for (std::size_t i = 2'000; i < trace.size(); ++i) {
    if (!engine.push(trace[i])) ++rejected;
  }
  const auto stats = engine.finish();
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(stats.records_dropped, 0u);
  EXPECT_EQ(stats.crashes, 2u);
}

TEST(LiveChaos, PushAndFinishGuards) {
  LiveConfig cfg;
  cfg.instances = 2;
  cfg.balancer = false;
  LiveEngine engine(cfg);

  Record rec;
  rec.side = Side::kR;
  rec.key = 7;
  rec.seq = 0;
  rec.ts = 0;

  // Before start(): push is rejected and counted, finish is an error
  // (logged, returns empty stats, does not poison the engine).
  EXPECT_FALSE(engine.push(rec));
  EXPECT_FALSE(engine.running());
  const auto empty = engine.finish();
  EXPECT_EQ(empty.records_in, 0u);

  engine.start();
  EXPECT_TRUE(engine.running());
  EXPECT_TRUE(engine.push(rec));
  engine.start();  // double start: logged, ignored
  const auto stats = engine.finish();
  EXPECT_EQ(stats.records_in, 1u);
  // The pre-start push: both of its deliveries were lost.
  EXPECT_EQ(stats.records_dropped, 2u);
  EXPECT_FALSE(engine.running());
  // After finish(): pushes are rejected, second finish returns empty,
  // and a late start() refuses to resurrect the engine.
  EXPECT_FALSE(engine.push(rec));
  const auto again = engine.finish();
  EXPECT_EQ(again.records_in, 0u);
  engine.start();
  EXPECT_FALSE(engine.running());
}

TEST(LiveChaos, SurvivesRepeatedRandomCrashes) {
  LiveConfig cfg;
  cfg.instances = 3;
  cfg.balancer = true;
  cfg.planner.theta = 1.2;
  cfg.min_heaviest_load = 10.0;
  cfg.monitor_period = std::chrono::milliseconds(1);
  cfg.checkpoint_period = std::chrono::milliseconds(4);
  cfg.migration_timeout = std::chrono::milliseconds(300);
  LiveEngine engine(cfg);
  MatchLog log;
  log.attach(engine);
  engine.start();

  const auto trace = make_trace(25, 30'000, 200, 1.2);
  Xoshiro256 rng(99);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    engine.push(trace[i]);
    if (i % 5'000 == 4'999) {
      engine.crash(static_cast<Side>(rng.next_below(2)),
                   static_cast<InstanceId>(rng.next_below(cfg.instances)));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto stats = engine.finish();  // must not deadlock

  // A random pick can hit a not-yet-respawned worker (a no-op), so not
  // every one of the 6 injection points lands.
  EXPECT_GE(stats.crashes, 3u);
  // The supervisor may still be mid-abort for the final crash when the
  // engine stops; every earlier crash must have been recovered.
  EXPECT_GE(stats.recoveries, stats.crashes - 1);
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_LE(log.unique(), expected_pairs(trace));
}

}  // namespace
}  // namespace fastjoin
