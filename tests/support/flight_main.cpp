// gtest main for the live-runtime (and telemetry) test binaries: on
// any test failure the telemetry flight recorder is dumped, so a chaos
// test that trips an assertion leaves the last ~1K events per thread
// next to the failure message instead of vanishing with the process.
//
// The dump goes to stderr (visible in `ctest --output-on-failure`) and
// to flight_<Suite>_<Test>.dump in the working directory.
#include <gtest/gtest.h>

#include <cstdio>
#include <iostream>
#include <string>

#include "telemetry/flight_recorder.hpp"

namespace {

class FlightDumpOnFailure : public ::testing::EmptyTestEventListener {
  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (info.result() == nullptr || !info.result()->Failed()) return;
    std::string path = "flight_";
    path += info.test_suite_name();
    path += '_';
    path += info.name();
    path += ".dump";
    // Parameterized/typed test names contain '/'.
    for (char& c : path) {
      if (c == '/') c = '-';
    }
    std::cerr << "[  FLIGHT  ] " << info.test_suite_name() << "."
              << info.name() << " failed; dumping flight recorder\n";
    fastjoin::telemetry::flight_dump(std::cerr);
    if (fastjoin::telemetry::flight_dump(path)) {
      std::cerr << "[  FLIGHT  ] written to " << path << "\n";
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new FlightDumpOnFailure);  // gtest takes ownership
  return RUN_ALL_TESTS();
}
