// Admission-control policy under virtual time: the rate-limit boundary
// ("burst exactly at capacity admits; one more record rejects with a
// retry_after"), deficit-derived retry hints, refill, the global
// in-flight budget, batch-shape refusal, and the backpressure refund.
//
// The rate is 15625 B/s on purpose: 15625 * kTokenScale(1024) is an
// exact multiple of 1e6, so the per-microsecond refill increment has no
// truncation and every admit/reject below is byte-exact, not "close".
#include "server/admission.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "common/clock.hpp"
#include "server/protocol.hpp"

namespace fastjoin::server {
namespace {

AdmissionConfig base_cfg(VirtualClock* clk) {
  AdmissionConfig cfg;
  cfg.tenant_rate_bytes_per_sec = 15'625;  // 16 scaled tokens per us, exact
  cfg.tenant_burst_bytes = 10'000;
  cfg.global_budget_bytes = 1 << 20;
  cfg.max_batch_records = 100;
  cfg.clock = clk;
  return cfg;
}

TEST(Admission, BurstExactlyAtCapacityAdmitsPlusOneRejects) {
  VirtualClock clk;
  AdmissionController ac(base_cfg(&clk));
  // A fresh tenant's first burst spends the whole bucket in one batch.
  AdmissionDecision d = ac.admit_append("t", 10'000, 10, 0);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(ac.tenant_tokens("t"), 0u);
  // One byte more does not fit; the refusal names the bucket and a
  // nonzero wait (1 byte deficit at 15625 B/s rounds up to 1 ms).
  d = ac.admit_append("t", 1, 1, 0);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kTenantRate);
  EXPECT_EQ(d.retry_after_ms, 1u);
}

TEST(Admission, WireExactBoundary) {
  // The same boundary expressed in wire bytes: capacity is exactly one
  // encoded 64-record append, as the front door will actually bill it.
  VirtualClock clk;
  AdmissionConfig cfg = base_cfg(&clk);
  cfg.tenant_burst_bytes = append_payload_bytes(64);
  AdmissionController ac(cfg);
  AppendMsg m;
  m.records.resize(64);
  const auto wire = encode(m);
  ASSERT_EQ(wire.size(), append_payload_bytes(64));
  EXPECT_TRUE(ac.admit_append("t", wire.size(), 64, 0).admitted);
  AdmissionDecision d = ac.admit_append("t", append_payload_bytes(1), 1, 0);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kTenantRate);
  EXPECT_GE(d.retry_after_ms, 1u);
}

TEST(Admission, RejectionBillsNothing) {
  VirtualClock clk;
  AdmissionController ac(base_cfg(&clk));
  // Over-capacity single batch: refused with the deficit's wait...
  AdmissionDecision d = ac.admit_append("t", 10'001, 10, 0);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kTenantRate);
  EXPECT_EQ(d.retry_after_ms, 1u);  // 1 byte deficit
  // ...and the refusal cost the tenant nothing: the full burst still
  // admits immediately afterwards.
  EXPECT_EQ(ac.tenant_tokens("t"), 10'000u);
  EXPECT_TRUE(ac.admit_append("t", 10'000, 10, 0).admitted);
}

TEST(Admission, RetryAfterIsSufficientToReadmit) {
  VirtualClock clk;
  AdmissionController ac(base_cfg(&clk));
  ASSERT_TRUE(ac.admit_append("t", 10'000, 10, 0).admitted);
  AdmissionDecision d = ac.admit_append("t", 500, 1, 0);
  ASSERT_FALSE(d.admitted);
  // 500-byte deficit at 15625 B/s = 32 ms exactly.
  EXPECT_EQ(d.retry_after_ms, 32u);
  // One millisecond short: still refused.
  clk.advance(std::chrono::milliseconds(d.retry_after_ms - 1));
  EXPECT_FALSE(ac.admit_append("t", 500, 1, 0).admitted);
  // The promised wait elapsed: admitted.
  clk.advance(std::chrono::milliseconds(1));
  EXPECT_TRUE(ac.admit_append("t", 500, 1, 0).admitted);
}

TEST(Admission, RefillCapsAtBurst) {
  VirtualClock clk;
  AdmissionController ac(base_cfg(&clk));
  ASSERT_TRUE(ac.admit_append("t", 10'000, 10, 0).admitted);
  clk.advance(std::chrono::hours(1));  // far past full refill
  EXPECT_EQ(ac.tenant_tokens("t"), 10'000u);
}

TEST(Admission, GlobalBudgetShedsBeforeTenantBucket) {
  VirtualClock clk;
  AdmissionController ac(base_cfg(&clk));
  AdmissionDecision d =
      ac.admit_append("t", 100, 1, (1 << 20) + 1 /* inflight */);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kGlobalBytes);
  EXPECT_GT(d.retry_after_ms, 0u);
  // The shed did not touch the bucket.
  EXPECT_EQ(ac.tenant_tokens("t"), 10'000u);
}

TEST(Admission, BatchTooLargeSaysResizeNotWait) {
  VirtualClock clk;
  AdmissionController ac(base_cfg(&clk));
  AdmissionDecision d = ac.admit_append("t", 100, 101, 0);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.reason, RejectReason::kBatchTooLarge);
  EXPECT_EQ(d.retry_after_ms, 0u);  // a smaller batch, not a wait
}

TEST(Admission, RefundRestoresTokensCappedAtBurst) {
  VirtualClock clk;
  AdmissionController ac(base_cfg(&clk));
  ASSERT_TRUE(ac.admit_append("t", 6'000, 10, 0).admitted);
  EXPECT_EQ(ac.tenant_tokens("t"), 4'000u);
  // The sink refused the batch downstream: the charge is undone.
  ac.refund("t", 6'000);
  EXPECT_EQ(ac.tenant_tokens("t"), 10'000u);
  // A stray double-refund cannot mint tokens past capacity.
  ac.refund("t", 6'000);
  EXPECT_EQ(ac.tenant_tokens("t"), 10'000u);
}

TEST(Admission, TenantsAreIsolated) {
  VirtualClock clk;
  AdmissionController ac(base_cfg(&clk));
  ASSERT_TRUE(ac.admit_append("noisy", 10'000, 10, 0).admitted);
  EXPECT_FALSE(ac.admit_append("noisy", 10'000, 10, 0).admitted);
  // The noisy tenant's empty bucket is invisible to the quiet one.
  EXPECT_TRUE(ac.admit_append("quiet", 10'000, 10, 0).admitted);
}

TEST(Admission, AppendPayloadBytesMatchesEncoder) {
  // The cost model the boundary tests rely on is the real wire size.
  for (std::size_t n : {0u, 1u, 7u, 256u}) {
    AppendMsg m;
    m.records.resize(n);
    EXPECT_EQ(encode(m).size(), append_payload_bytes(n)) << n;
  }
}

}  // namespace
}  // namespace fastjoin::server
