// Client protocol codecs: every type roundtrips; truncations, trailing
// garbage, oversized tenants, bad sides and lying counts are rejected
// at exact boundaries (the fuzz harnesses sweep the same properties
// over random bytes; these pin the edges deterministically).
#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include "net/wire.hpp"

namespace fastjoin::server {
namespace {

template <typename M>
void expect_rejects_mutations(const M& msg) {
  const auto full = encode(msg);
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::byte> cut(full.begin(),
                               full.begin() + static_cast<long>(len));
    M out;
    EXPECT_FALSE(decode(cut, out)) << "accepted truncation at " << len;
  }
  auto extended = full;
  extended.push_back(std::byte{0xEE});
  M out;
  EXPECT_FALSE(decode(extended, out)) << "accepted trailing garbage";
}

template <typename M>
bool decode_with_count(std::vector<std::byte> buf, std::size_t off,
                       std::uint32_t count) {
  for (int i = 0; i < 4; ++i) {
    buf[off + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((count >> (8 * i)) & 0xFF);
  }
  M out;
  return decode(buf, out);
}

TEST(ClientProtocol, HelloRoundtrip) {
  ClientHelloMsg m;
  m.tenant = "tenant-a";
  m.proto_version = 1;
  ClientHelloMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  EXPECT_EQ(d.tenant, "tenant-a");
  EXPECT_EQ(d.proto_version, 1u);
  expect_rejects_mutations(m);

  ClientHelloMsg empty;  // empty tenant is wire-legal (FrontDoor rejects)
  ClientHelloMsg de;
  ASSERT_TRUE(decode(encode(empty), de));
  EXPECT_TRUE(de.tenant.empty());
}

TEST(ClientProtocol, HelloTenantAtSizeCap) {
  ClientHelloMsg m;
  m.tenant.assign(256, 'x');
  ClientHelloMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  EXPECT_EQ(d.tenant.size(), 256u);

  m.tenant.assign(257, 'x');
  EXPECT_FALSE(decode(encode(m), d));
}

TEST(ClientProtocol, HelloAckRoundtrip) {
  ClientHelloAckMsg m;
  m.ok = 1;
  m.reason = 0;
  m.max_batch_records = 512;
  m.rate_bytes_per_sec = 1 << 20;
  m.burst_bytes = 1 << 16;
  ClientHelloAckMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  EXPECT_EQ(d.max_batch_records, 512u);
  EXPECT_EQ(d.burst_bytes, 1u << 16);
  expect_rejects_mutations(m);
}

TEST(ClientProtocol, AppendRoundtrip) {
  AppendMsg m;
  m.req_id = 42;
  for (std::uint64_t i = 0; i < 3; ++i) {
    ClientRecord rec;
    rec.side = (i & 1) ? Side::kS : Side::kR;
    rec.key = 100 + i;
    rec.payload = i * 7;
    m.records.push_back(rec);
  }
  AppendMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  EXPECT_EQ(d.req_id, 42u);
  ASSERT_EQ(d.records.size(), 3u);
  EXPECT_EQ(d.records[2].key, 102u);
  EXPECT_EQ(d.records[1].side, Side::kS);
  expect_rejects_mutations(m);
  EXPECT_EQ(encode(m).size(), append_payload_bytes(3));
}

TEST(ClientProtocol, AppendCountBoundary) {
  AppendMsg m;
  m.req_id = 1;
  for (int i = 0; i < 3; ++i) m.records.push_back(ClientRecord{});
  const auto buf = encode(m);
  ASSERT_EQ(buf.size(), 12u + 3 * 17u);  // req_id + count + 17B records
  EXPECT_TRUE(decode_with_count<AppendMsg>(buf, 8, 3));
  EXPECT_FALSE(decode_with_count<AppendMsg>(buf, 8, 4));
  EXPECT_FALSE(decode_with_count<AppendMsg>(buf, 8, 2));  // done() fails
  EXPECT_FALSE(decode_with_count<AppendMsg>(buf, 8, 0xFFFF'FFFFu));
}

TEST(ClientProtocol, AppendBadSideRejected) {
  AppendMsg m;
  m.req_id = 1;
  m.records.push_back(ClientRecord{});
  auto buf = encode(m);
  buf[12] = std::byte{2};  // side byte of record 0
  AppendMsg d;
  EXPECT_FALSE(decode(buf, d));
}

TEST(ClientProtocol, AppendAckAndRejectedRoundtrip) {
  AppendAckMsg a;
  a.req_id = 7;
  a.first_offset = 100;
  a.appended = 3;
  a.parked = 1;
  AppendAckMsg ad;
  ASSERT_TRUE(decode(encode(a), ad));
  EXPECT_EQ(ad.first_offset, 100u);
  EXPECT_EQ(ad.parked, 1u);
  expect_rejects_mutations(a);

  RejectedMsg rj;
  rj.req_id = 7;
  rj.reason = static_cast<std::uint8_t>(RejectReason::kTenantRate);
  rj.retry_after_ms = 250;
  RejectedMsg rd;
  ASSERT_TRUE(decode(encode(rj), rd));
  EXPECT_EQ(rd.retry_after_ms, 250u);
  expect_rejects_mutations(rj);
}

TEST(ClientProtocol, QueryRoundtrip) {
  QueryMsg m;
  m.req_id = 9;
  m.key = 1234;
  m.max_recent = 16;
  QueryMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  EXPECT_EQ(d.key, 1234u);
  expect_rejects_mutations(m);
}

TEST(ClientProtocol, QueryResultRoundtrip) {
  QueryResultMsg m;
  m.req_id = 9;
  m.key = 1234;
  m.r_tuples = 10;
  m.s_tuples = 20;
  m.owner_r = 1;
  m.owner_s = 2;
  m.as_of_ckpt = 5;
  m.matches_total = 200;
  m.recent = {MatchPair{1, 2, 3}, MatchPair{4, 5, 6}};
  QueryResultMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  EXPECT_EQ(d.matches_total, 200u);
  ASSERT_EQ(d.recent.size(), 2u);
  EXPECT_EQ(d.recent[1].s_seq, 6u);
  expect_rejects_mutations(m);
}

TEST(ClientProtocol, QueryResultCountBoundary) {
  QueryResultMsg m;
  m.recent = {MatchPair{1, 2, 3}, MatchPair{4, 5, 6}};
  const auto buf = encode(m);
  ASSERT_EQ(buf.size(), 60u + 2 * 24u);  // fixed header + 24B pairs
  EXPECT_TRUE(decode_with_count<QueryResultMsg>(buf, 56, 2));
  EXPECT_FALSE(decode_with_count<QueryResultMsg>(buf, 56, 3));
  EXPECT_FALSE(decode_with_count<QueryResultMsg>(buf, 56, 0xFFFF'FFFFu));
}

TEST(ClientProtocol, Names) {
  EXPECT_STREQ(client_msg_type_name(ClientMsgType::kAppend), "Append");
  EXPECT_STREQ(reject_reason_name(RejectReason::kBadTenant),
               "bad-tenant");
}

}  // namespace
}  // namespace fastjoin::server
