// Serving front door end-to-end: real clients over real sockets into a
// real multi-process router, verified byte-identical against the
// in-process engine replaying the router's own log.
//
// The log replay is the only possible ground truth here: front-door
// records get their seq/ts stamps inside the router (clients cannot
// forge stream positions), so the expected match set is defined by
// what the router logged, not by what the clients offered.
//
// This binary is its own worker: the router spawns /proc/self/exe with
// --multiproc-worker and main() (below) routes those invocations into
// the worker loop before gtest initializes.
#include "runtime/multiproc.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "net/connection.hpp"
#include "net/frame.hpp"
#include "runtime/live_engine.hpp"
#include "server/protocol.hpp"

namespace fastjoin {
namespace {

using namespace std::chrono_literals;

constexpr std::uint16_t wire(server::ClientMsgType t) {
  return static_cast<std::uint16_t>(t);
}

std::string temp_sock_path(const char* tag) {
  return "/tmp/fastjoin-e2e-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

MultiprocConfig serve_config(std::uint32_t workers, const char* tag) {
  MultiprocConfig cfg;
  cfg.workers = workers;
  cfg.worker_command = {"/proc/self/exe"};
  cfg.collect_matches = true;  // the router-side half of the comparison
  cfg.truncate_log = false;    // dump_log() must hold the full history
  cfg.checkpoint_every = 512;  // keep query snapshots fresh
  cfg.serve = true;
  cfg.serve_cfg.endpoint.kind = net::Endpoint::Kind::kUnix;
  cfg.serve_cfg.endpoint.path = temp_sock_path(tag);
  return cfg;
}

using PairKey = std::tuple<KeyId, std::uint64_t, std::uint64_t>;

std::vector<PairKey> canonical(std::vector<MatchPair> pairs) {
  std::vector<PairKey> out;
  out.reserve(pairs.size());
  for (const auto& p : pairs) out.emplace_back(p.key, p.r_seq, p.s_seq);
  std::sort(out.begin(), out.end());
  return out;
}

/// Replay the router's log through the in-process laned plane.
std::vector<PairKey> replay_log(const std::vector<LogRecord>& log,
                                std::uint32_t instances) {
  LiveConfig lc;
  lc.instances = instances;
  lc.balancer = false;
  LiveEngine engine(lc);
  std::mutex mu;
  std::vector<MatchPair> pairs;
  engine.set_on_match([&](const MatchPair& p) {
    std::lock_guard<std::mutex> lk(mu);
    pairs.push_back(p);
  });
  engine.start();
  for (const LogRecord& lr : log) engine.push(lr.rec);
  engine.finish();
  return canonical(std::move(pairs));
}

/// What one client thread did, for the accounting assertions.
struct ClientOutcome {
  std::uint64_t offered = 0;   ///< append requests sent (incl. retries)
  std::uint64_t admitted = 0;  ///< kAppendAck received
  std::uint64_t rejected = 0;  ///< kRejected received
  std::uint64_t admitted_records = 0;
  std::uint64_t queries_answered = 0;
  std::string fail;  ///< first client-side failure, empty if none
  bool ok() const { return fail.empty(); }
};

bool client_hello(net::FrameConn& fc, const std::string& tenant) {
  server::ClientHelloMsg h;
  h.tenant = tenant;
  if (!fc.write_frame(wire(server::ClientMsgType::kClientHello),
                      encode(h))) {
    return false;
  }
  net::Frame f;
  server::ClientHelloAckMsg ack;
  return fc.read_frame(f) &&
         f.type == wire(server::ClientMsgType::kClientHelloAck) &&
         decode(f.payload, ack) && ack.ok == 1;
}

/// One tenant's whole session: `batches` batches of `batch` records.
/// Polite clients retry a refused batch after honoring retry_after (so
/// every batch lands eventually); abusive clients never retry and never
/// wait — each refusal is final and the next batch goes out at once.
ClientOutcome run_client(const net::Endpoint& ep, const std::string& tenant,
                         std::uint64_t seed, int batches, int batch,
                         int num_keys, bool polite, int queries) {
  ClientOutcome out;
  std::string err;
  net::FrameConn fc = net::FrameConn::connect(ep, 10'000ms, &err);
  if (!fc.valid()) {
    out.fail = "connect: " + err;
    return out;
  }
  if (!client_hello(fc, tenant)) {
    out.fail = "hello refused";
    return out;
  }
  Xoshiro256 rng(seed);
  std::uint64_t req_id = 1;
  for (int b = 0; b < batches && out.ok(); ++b) {
    server::AppendMsg m;
    m.records.resize(batch);
    for (auto& r : m.records) {
      r.side = rng.next_below(2) != 0 ? Side::kS : Side::kR;
      r.key = static_cast<KeyId>(rng.next_below(num_keys));
      r.payload = rng();
    }
    for (int attempt = 0; attempt < 200; ++attempt) {
      m.req_id = req_id++;
      if (!fc.write_frame(wire(server::ClientMsgType::kAppend),
                          encode(m))) {
        out.fail = "append write failed";
        break;
      }
      ++out.offered;
      net::Frame f;
      if (!fc.read_frame(f)) {
        out.fail = "append reply missing";
        break;
      }
      if (f.type == wire(server::ClientMsgType::kAppendAck)) {
        server::AppendAckMsg ack;
        if (!decode(f.payload, ack)) {
          out.fail = "bad append ack";
          break;
        }
        ++out.admitted;
        out.admitted_records += ack.appended + ack.parked;
        break;
      }
      if (f.type != wire(server::ClientMsgType::kRejected)) {
        out.fail = "unexpected append reply type";
        break;
      }
      server::RejectedMsg rej;
      if (!decode(f.payload, rej)) {
        out.fail = "bad reject";
        break;
      }
      ++out.rejected;
      if (!polite) break;  // abusive: drop the batch, hammer the next
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::max<std::uint32_t>(1, rej.retry_after_ms)));
    }
  }
  for (int q = 0; q < queries && out.ok(); ++q) {
    server::QueryMsg qm;
    qm.req_id = 1'000'000 + static_cast<std::uint64_t>(q);
    qm.key = static_cast<KeyId>(q % num_keys);
    qm.max_recent = 8;
    if (!fc.write_frame(wire(server::ClientMsgType::kQuery), encode(qm))) {
      out.fail = "query write failed";
      break;
    }
    net::Frame f;
    server::QueryResultMsg res;
    if (!fc.read_frame(f) ||
        f.type != wire(server::ClientMsgType::kQueryResult) ||
        !decode(f.payload, res) || res.req_id != qm.req_id ||
        res.key != qm.key) {
      out.fail = "query result broken";
      break;
    }
    ++out.queries_answered;
  }
  fc.write_frame(wire(server::ClientMsgType::kClientBye), {});
  return out;
}

TEST(ServingE2E, ByteIdenticalThroughFrontDoor) {
  auto cfg = serve_config(2, "ident");
  MultiprocRouter router(std::move(cfg));
  std::string err;
  ASSERT_TRUE(router.start(&err)) << err;
  const net::Endpoint ep = router.frontdoor()->endpoint();

  ClientOutcome alice, bob;
  std::atomic<int> live{2};
  std::thread ta([&] {
    alice = run_client(ep, "alice", 0xA11CE, 30, 40, 64, true, 5);
    --live;
  });
  std::thread tb([&] {
    bob = run_client(ep, "bob", 0xB0B, 30, 40, 64, true, 0);
    --live;
  });
  while (live.load() > 0) router.pump(5ms);
  ta.join();
  tb.join();
  EXPECT_TRUE(alice.ok()) << alice.fail;
  EXPECT_TRUE(bob.ok()) << bob.fail;

  const auto log = router.dump_log();
  ASSERT_TRUE(router.finish());

  // Nothing admitted may be dropped, and the multi-process output must
  // be byte-identical to the in-process replay of the router's log.
  EXPECT_EQ(router.stats().records_dropped, 0u);
  const auto expected = replay_log(log, 2);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(canonical(router.take_matches()), expected);

  // Per-tenant ledger: offered == admitted + rejected, exactly; with
  // default (generous) admission nothing was refused at all.
  const auto& tenants = router.frontdoor()->stats().tenants;
  for (const char* name : {"alice", "bob"}) {
    const server::TenantStats& ts = tenants.at(name);
    EXPECT_EQ(ts.offered_requests,
              ts.admitted_requests + ts.rejected_requests)
        << name;
    EXPECT_EQ(ts.admitted_requests, 30u) << name;
    EXPECT_EQ(ts.admitted_records, 30u * 40u) << name;
  }
  EXPECT_EQ(alice.admitted_records + bob.admitted_records,
            static_cast<std::uint64_t>(log.size()));
  EXPECT_EQ(alice.queries_answered, 5u);
}

TEST(ServingE2E, AbusiveTenantShedOthersUnharmed) {
  auto cfg = serve_config(2, "abuse");
  // Tight per-tenant budget: one 32-record batch per burst, ~30 batches
  // per second of refill — an honest client glides, a hammering one
  // bounces off the bucket.
  cfg.serve_cfg.admission.tenant_burst_bytes =
      server::append_payload_bytes(32);
  cfg.serve_cfg.admission.tenant_rate_bytes_per_sec =
      30 * server::append_payload_bytes(32);
  MultiprocRouter router(std::move(cfg));
  std::string err;
  ASSERT_TRUE(router.start(&err)) << err;
  const net::Endpoint ep = router.frontdoor()->endpoint();

  ClientOutcome polite, abusive;
  std::atomic<int> live{2};
  std::thread tp([&] {
    polite = run_client(ep, "polite", 0x90117E, 12, 32, 48, true, 0);
    --live;
  });
  std::thread tx([&] {
    abusive = run_client(ep, "abusive", 0xAB05E, 120, 32, 48, false, 0);
    --live;
  });
  while (live.load() > 0) router.pump(5ms);
  tp.join();
  tx.join();
  EXPECT_TRUE(polite.ok()) << polite.fail;
  EXPECT_TRUE(abusive.ok()) << abusive.fail;

  const auto log = router.dump_log();
  ASSERT_TRUE(router.finish());

  // The abuse was real and the refusals explicit.
  EXPECT_GT(abusive.rejected, 0u);
  // The polite tenant landed every batch by honoring retry_after.
  EXPECT_EQ(polite.admitted, 12u);
  // Ledgers balance on both sides of the wire, for both tenants.
  const auto& tenants = router.frontdoor()->stats().tenants;
  for (const auto* c : {&polite, &abusive}) {
    EXPECT_EQ(c->offered, c->admitted + c->rejected);
  }
  const server::TenantStats& pt = tenants.at("polite");
  const server::TenantStats& at = tenants.at("abusive");
  EXPECT_EQ(pt.offered_requests,
            pt.admitted_requests + pt.rejected_requests);
  EXPECT_EQ(at.offered_requests,
            at.admitted_requests + at.rejected_requests);
  EXPECT_EQ(pt.admitted_requests, polite.admitted);
  EXPECT_EQ(at.rejected_requests, abusive.rejected);

  // Shedding the abuser must not cost a single admitted record: the
  // output is still byte-identical to the log replay, with zero drops.
  EXPECT_EQ(router.stats().records_dropped, 0u);
  EXPECT_EQ(canonical(router.take_matches()), replay_log(log, 2));
  EXPECT_EQ(polite.admitted_records + abusive.admitted_records,
            static_cast<std::uint64_t>(log.size()));
}

}  // namespace
}  // namespace fastjoin

int main(int argc, char** argv) {
  // Worker re-entry: the router execs this same binary with
  // --multiproc-worker; hand those straight to the worker loop.
  const int rc = fastjoin::multiproc_worker_maybe_run(argc, argv);
  if (rc >= 0) return rc;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
