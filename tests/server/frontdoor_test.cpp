// FrontDoor over real loopback sockets: protocol discipline (hello
// gating, explicit refusals, clean byes), the admission boundary as a
// client actually experiences it, backpressure refusal + refund,
// slow/abusive clients (mid-request EOF, slowloris vs the idle sweep,
// connection-capacity refusal), and the per-tenant accounting
// invariant offered == admitted + rejected.
//
// Shape: the gtest main thread IS the event-loop thread (it pumps
// run_once), while a blocking FrameConn client runs in a std::thread.
// Client-side failures are collected into a string and asserted after
// the join — ASSERT aborts only the thread function, so the client
// reports rather than asserts.
#include "server/frontdoor.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "server/protocol.hpp"

namespace fastjoin::server {
namespace {

using namespace std::chrono_literals;

std::string temp_sock_path(const char* tag) {
  return "/tmp/fastjoin-serve-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

net::Endpoint unix_ep(const char* tag) {
  net::Endpoint ep;
  ep.kind = net::Endpoint::Kind::kUnix;
  ep.path = temp_sock_path(tag);
  return ep;
}

constexpr std::uint16_t wire(ClientMsgType t) {
  return static_cast<std::uint16_t>(t);
}

/// FrontDoor plus stub data plane: the sink assigns consecutive
/// offsets (refusing when `refuse_sink`), the query handler returns
/// fixed state, the load probe reports `inflight`.
struct DoorHarness {
  net::EventLoop loop;
  FrontDoor door;
  std::uint64_t next_offset = 0;
  std::uint64_t sunk_records = 0;
  std::uint64_t inflight = 0;
  bool refuse_sink = false;

  explicit DoorHarness(FrontDoorConfig cfg) : door(loop, std::move(cfg)) {}

  bool start(std::string* err) {
    return door.start(
        [this](const std::string&, const std::vector<ClientRecord>& recs,
               AppendAckMsg* ack) {
          if (refuse_sink) return false;
          ack->first_offset = next_offset;
          next_offset += recs.size();
          ack->appended = recs.size();
          sunk_records += recs.size();
          return true;
        },
        [](const QueryMsg& q, QueryResultMsg* out) {
          out->r_tuples = 3;
          out->s_tuples = 4;
          out->owner_r = 1;
          out->as_of_ckpt = 7;
          out->matches_total = 12;
          out->recent.resize(std::min<std::uint32_t>(q.max_recent, 2));
        },
        [this] { return inflight; }, err);
  }

  template <typename Pred>
  bool pump_until(Pred done, std::chrono::milliseconds timeout = 15'000ms) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!done()) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      loop.run_once(2ms);
    }
    return true;
  }
};

FrontDoorConfig door_cfg(const char* tag) {
  FrontDoorConfig cfg;
  cfg.endpoint = unix_ep(tag);
  return cfg;
}

/// Client-thread failure collector: first failure wins, later steps
/// are skipped by the callers checking ok().
struct ClientLog {
  std::atomic<bool> done{false};
  std::string fail;
  bool ok() const { return fail.empty(); }
  void expect(bool cond, const std::string& what) {
    if (!cond && fail.empty()) fail = what;
  }
};

bool hello(net::FrameConn& fc, const std::string& tenant,
           ClientHelloAckMsg& ack) {
  ClientHelloMsg h;
  h.tenant = tenant;
  if (!fc.write_frame(wire(ClientMsgType::kClientHello), encode(h))) {
    return false;
  }
  net::Frame f;
  if (!fc.read_frame(f)) return false;
  if (f.type != wire(ClientMsgType::kClientHelloAck)) return false;
  return decode(f.payload, ack);
}

/// Append `records` records; returns the reply frame type (kAppendAck
/// or kRejected, decoded into whichever out-param matches), 0 on error.
std::uint16_t append(net::FrameConn& fc, std::uint64_t req_id,
                     std::size_t records, AppendAckMsg* ack,
                     RejectedMsg* rej) {
  AppendMsg m;
  m.req_id = req_id;
  m.records.resize(records);
  for (std::size_t i = 0; i < records; ++i) {
    m.records[i].side = (i % 2 != 0) ? Side::kS : Side::kR;
    m.records[i].key = static_cast<KeyId>(i % 5);
    m.records[i].payload = req_id * 1000 + i;
  }
  if (!fc.write_frame(wire(ClientMsgType::kAppend), encode(m))) return 0;
  net::Frame f;
  if (!fc.read_frame(f)) return 0;
  if (f.type == wire(ClientMsgType::kAppendAck) && ack != nullptr &&
      decode(f.payload, *ack)) {
    return f.type;
  }
  if (f.type == wire(ClientMsgType::kRejected) && rej != nullptr &&
      decode(f.payload, *rej)) {
    return f.type;
  }
  return 0;
}

TEST(FrontDoor, HelloAppendQueryByeHappyPath) {
  DoorHarness h(door_cfg("happy"));
  std::string err;
  ASSERT_TRUE(h.start(&err)) << err;

  ClientLog log;
  std::thread client([&] {
    std::string cerr;
    net::FrameConn fc =
        net::FrameConn::connect(h.door.endpoint(), 5'000ms, &cerr);
    log.expect(fc.valid(), "connect: " + cerr);
    if (log.ok()) {
      ClientHelloAckMsg hack;
      log.expect(hello(fc, "alice", hack) && hack.ok == 1, "hello refused");
      log.expect(hack.max_batch_records > 0, "hello ack missing limits");
    }
    if (log.ok()) {
      AppendAckMsg a1, a2;
      log.expect(append(fc, 1, 10, &a1, nullptr) ==
                     wire(ClientMsgType::kAppendAck),
                 "append 1 not acked");
      log.expect(append(fc, 2, 5, &a2, nullptr) ==
                     wire(ClientMsgType::kAppendAck),
                 "append 2 not acked");
      log.expect(a1.req_id == 1 && a2.req_id == 2, "req_id echo broken");
      log.expect(a1.first_offset == 0 && a1.appended == 10,
                 "ack 1 offsets wrong");
      log.expect(a2.first_offset == 10 && a2.appended == 5,
                 "ack 2 offsets wrong");
    }
    if (log.ok()) {
      QueryMsg q;
      q.req_id = 9;
      q.key = 3;
      q.max_recent = 8;
      fc.write_frame(wire(ClientMsgType::kQuery), encode(q));
      net::Frame f;
      QueryResultMsg res;
      log.expect(fc.read_frame(f) &&
                     f.type == wire(ClientMsgType::kQueryResult) &&
                     decode(f.payload, res),
                 "query result missing");
      log.expect(res.req_id == 9 && res.key == 3, "query echo broken");
      log.expect(res.r_tuples == 3 && res.s_tuples == 4 &&
                     res.matches_total == 12 && res.as_of_ckpt == 7,
                 "query state wrong");
    }
    if (log.ok()) {
      fc.write_frame(wire(ClientMsgType::kClientBye), {});
    }
    log.done = true;
  });

  ASSERT_TRUE(h.pump_until([&] { return log.done.load(); }));
  client.join();
  EXPECT_TRUE(log.ok()) << log.fail;
  // The bye closes server-side; drain until the slot is gone.
  ASSERT_TRUE(h.pump_until([&] { return h.door.open_connections() == 0; }));

  const FrontDoorStats& s = h.door.stats();
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_EQ(s.closed, 1u);
  EXPECT_EQ(s.protocol_errors, 0u);
  const TenantStats& ts = s.tenants.at("alice");
  EXPECT_EQ(ts.offered_requests, 2u);
  EXPECT_EQ(ts.admitted_requests, 2u);
  EXPECT_EQ(ts.rejected_requests, 0u);
  EXPECT_EQ(ts.admitted_records, 15u);
  EXPECT_EQ(ts.queries, 1u);
  EXPECT_EQ(h.sunk_records, 15u);
  ::unlink(h.door.endpoint().path.c_str());
}

TEST(FrontDoor, AppendBeforeHelloIsProtocolError) {
  DoorHarness h(door_cfg("nohello"));
  std::string err;
  ASSERT_TRUE(h.start(&err)) << err;

  ClientLog log;
  std::thread client([&] {
    std::string cerr;
    net::FrameConn fc =
        net::FrameConn::connect(h.door.endpoint(), 5'000ms, &cerr);
    log.expect(fc.valid(), "connect: " + cerr);
    if (log.ok()) {
      AppendMsg m;
      m.records.resize(1);
      fc.write_frame(wire(ClientMsgType::kAppend), encode(m));
      net::Frame f;
      // The server answers with a close, not a frame.
      log.expect(!fc.read_frame(f), "expected close, got a frame");
    }
    log.done = true;
  });

  ASSERT_TRUE(h.pump_until([&] {
    return log.done.load() && h.door.open_connections() == 0;
  }));
  client.join();
  EXPECT_TRUE(log.ok()) << log.fail;
  EXPECT_EQ(h.door.stats().protocol_errors, 1u);
  EXPECT_EQ(h.door.stats().closed, 1u);
  EXPECT_EQ(h.sunk_records, 0u);
  ::unlink(h.door.endpoint().path.c_str());
}

TEST(FrontDoor, EmptyTenantRefusedThenCorrectedHelloWorks) {
  DoorHarness h(door_cfg("badtenant"));
  std::string err;
  ASSERT_TRUE(h.start(&err)) << err;

  ClientLog log;
  std::thread client([&] {
    std::string cerr;
    net::FrameConn fc =
        net::FrameConn::connect(h.door.endpoint(), 5'000ms, &cerr);
    log.expect(fc.valid(), "connect: " + cerr);
    if (log.ok()) {
      ClientHelloAckMsg hack;
      // Refused, not dropped: an explicit nack naming the reason, and
      // the connection survives for a corrected hello.
      log.expect(hello(fc, "", hack), "no nack for empty tenant");
      log.expect(hack.ok == 0 &&
                     hack.reason ==
                         static_cast<std::uint8_t>(RejectReason::kBadTenant),
                 "nack reason wrong");
      log.expect(hello(fc, "alice", hack) && hack.ok == 1,
                 "corrected hello refused");
      fc.write_frame(wire(ClientMsgType::kClientBye), {});
    }
    log.done = true;
  });

  ASSERT_TRUE(h.pump_until([&] {
    return log.done.load() && h.door.open_connections() == 0;
  }));
  client.join();
  EXPECT_TRUE(log.ok()) << log.fail;
  EXPECT_EQ(h.door.stats().protocol_errors, 0u);
  ::unlink(h.door.endpoint().path.c_str());
}

TEST(FrontDoor, RateLimitBoundaryOverWire) {
  // Burst sized to exactly one 8-record append under a VirtualClock
  // (no refill): the first batch admits, the next 1-record batch is an
  // explicit kTenantRate reject with a retry hint — and the tenant's
  // ledger balances to the record.
  VirtualClock vclk;
  FrontDoorConfig cfg = door_cfg("boundary");
  cfg.admission.clock = &vclk;
  cfg.admission.tenant_burst_bytes = append_payload_bytes(8);
  cfg.admission.tenant_rate_bytes_per_sec = 1024;
  DoorHarness h(cfg);
  std::string err;
  ASSERT_TRUE(h.start(&err)) << err;

  ClientLog log;
  std::thread client([&] {
    std::string cerr;
    net::FrameConn fc =
        net::FrameConn::connect(h.door.endpoint(), 5'000ms, &cerr);
    log.expect(fc.valid(), "connect: " + cerr);
    ClientHelloAckMsg hack;
    if (log.ok()) log.expect(hello(fc, "bob", hack), "hello failed");
    if (log.ok()) {
      AppendAckMsg ack;
      log.expect(
          append(fc, 1, 8, &ack, nullptr) == wire(ClientMsgType::kAppendAck),
          "burst exactly at capacity must admit");
      RejectedMsg rej;
      log.expect(
          append(fc, 2, 1, nullptr, &rej) == wire(ClientMsgType::kRejected),
          "over-capacity append must be rejected");
      log.expect(rej.req_id == 2, "reject req_id echo broken");
      log.expect(rej.reason ==
                     static_cast<std::uint8_t>(RejectReason::kTenantRate),
                 "reject reason not kTenantRate");
      log.expect(rej.retry_after_ms >= 1, "retry_after must be nonzero");
      fc.write_frame(wire(ClientMsgType::kClientBye), {});
    }
    log.done = true;
  });

  ASSERT_TRUE(h.pump_until([&] {
    return log.done.load() && h.door.open_connections() == 0;
  }));
  client.join();
  EXPECT_TRUE(log.ok()) << log.fail;
  const TenantStats& ts = h.door.stats().tenants.at("bob");
  EXPECT_EQ(ts.offered_requests, 2u);
  EXPECT_EQ(ts.admitted_requests, 1u);
  EXPECT_EQ(ts.rejected_requests, 1u);
  EXPECT_EQ(ts.admitted_requests + ts.rejected_requests,
            ts.offered_requests);
  EXPECT_EQ(ts.admitted_records, 8u);
  EXPECT_EQ(ts.rejected_records, 1u);
  EXPECT_EQ(h.sunk_records, 8u);
  ::unlink(h.door.endpoint().path.c_str());
}

TEST(FrontDoor, BackpressureRefusalIsExplicitAndRefunded) {
  // Bucket fits exactly one 8-record batch and never refills: if the
  // backpressure path failed to refund, the retry after the sink
  // recovers would bounce off an empty bucket as kTenantRate.
  VirtualClock vclk;
  FrontDoorConfig cfg = door_cfg("backpressure");
  cfg.admission.clock = &vclk;
  cfg.admission.tenant_burst_bytes = append_payload_bytes(8);
  cfg.admission.tenant_rate_bytes_per_sec = 1024;
  DoorHarness h(cfg);
  h.refuse_sink = true;
  std::string err;
  ASSERT_TRUE(h.start(&err)) << err;

  ClientLog log;
  std::atomic<bool> saw_reject{false};
  std::atomic<bool> sink_open{false};
  std::thread client([&] {
    std::string cerr;
    net::FrameConn fc =
        net::FrameConn::connect(h.door.endpoint(), 5'000ms, &cerr);
    log.expect(fc.valid(), "connect: " + cerr);
    ClientHelloAckMsg hack;
    if (log.ok()) log.expect(hello(fc, "carol", hack), "hello failed");
    if (log.ok()) {
      RejectedMsg rej;
      log.expect(
          append(fc, 1, 8, nullptr, &rej) == wire(ClientMsgType::kRejected),
          "refusing sink must surface as a reject");
      log.expect(rej.reason ==
                     static_cast<std::uint8_t>(RejectReason::kBackpressure),
                 "reason not kBackpressure");
      log.expect(rej.retry_after_ms > 0, "backpressure retry hint missing");
      saw_reject = true;
      while (!sink_open.load()) std::this_thread::sleep_for(1ms);
      AppendAckMsg ack;
      log.expect(
          append(fc, 2, 8, &ack, nullptr) == wire(ClientMsgType::kAppendAck),
          "retry after refund must admit (tokens were not returned?)");
      fc.write_frame(wire(ClientMsgType::kClientBye), {});
    }
    log.done = true;
  });

  ASSERT_TRUE(h.pump_until([&] { return saw_reject.load(); }));
  h.refuse_sink = false;  // loop thread owns the flag; flip it here
  sink_open = true;
  ASSERT_TRUE(h.pump_until([&] {
    return log.done.load() && h.door.open_connections() == 0;
  }));
  client.join();
  EXPECT_TRUE(log.ok()) << log.fail;
  EXPECT_EQ(h.door.stats().backpressure_rejects, 1u);
  const TenantStats& ts = h.door.stats().tenants.at("carol");
  EXPECT_EQ(ts.offered_requests, 2u);
  EXPECT_EQ(ts.admitted_requests, 1u);
  EXPECT_EQ(ts.rejected_requests, 1u);
  ::unlink(h.door.endpoint().path.c_str());
}

TEST(FrontDoor, OversizedBatchRejectedConnectionStaysUsable) {
  FrontDoorConfig cfg = door_cfg("bigbatch");
  cfg.admission.max_batch_records = 8;
  DoorHarness h(cfg);
  std::string err;
  ASSERT_TRUE(h.start(&err)) << err;

  ClientLog log;
  std::thread client([&] {
    std::string cerr;
    net::FrameConn fc =
        net::FrameConn::connect(h.door.endpoint(), 5'000ms, &cerr);
    log.expect(fc.valid(), "connect: " + cerr);
    ClientHelloAckMsg hack;
    if (log.ok()) log.expect(hello(fc, "dave", hack), "hello failed");
    if (log.ok()) {
      RejectedMsg rej;
      log.expect(
          append(fc, 1, 9, nullptr, &rej) == wire(ClientMsgType::kRejected),
          "oversized batch must be rejected");
      log.expect(rej.reason ==
                     static_cast<std::uint8_t>(RejectReason::kBatchTooLarge),
                 "reason not kBatchTooLarge");
      log.expect(rej.retry_after_ms == 0,
                 "kBatchTooLarge means resize, not wait");
      AppendAckMsg ack;
      log.expect(
          append(fc, 2, 8, &ack, nullptr) == wire(ClientMsgType::kAppendAck),
          "right-sized retry on the same connection must admit");
      fc.write_frame(wire(ClientMsgType::kClientBye), {});
    }
    log.done = true;
  });

  ASSERT_TRUE(h.pump_until([&] {
    return log.done.load() && h.door.open_connections() == 0;
  }));
  client.join();
  EXPECT_TRUE(log.ok()) << log.fail;
  EXPECT_EQ(h.door.stats().protocol_errors, 0u);
  const TenantStats& ts = h.door.stats().tenants.at("dave");
  EXPECT_EQ(ts.offered_requests, 2u);
  EXPECT_EQ(ts.admitted_requests + ts.rejected_requests,
            ts.offered_requests);
  ::unlink(h.door.endpoint().path.c_str());
}

TEST(FrontDoor, MidRequestEofIsAccountedNotDropped) {
  DoorHarness h(door_cfg("eof"));
  std::string err;
  ASSERT_TRUE(h.start(&err)) << err;

  std::atomic<bool> sent{false};
  std::thread client([&] {
    std::string cerr;
    net::Socket s = net::connect_with_retry(h.door.endpoint(), 5'000ms,
                                            &cerr);
    ASSERT_TRUE(s.valid()) << cerr;
    AppendMsg m;
    m.records.resize(64);
    const auto buf =
        net::encode_frame(wire(ClientMsgType::kAppend), encode(m));
    // Half the request, then vanish — the SIGKILL-mid-write client.
    ASSERT_TRUE(net::send_all(s, buf.data(), buf.size() / 2));
    sent = true;
    // Socket closes on scope exit.
  });
  client.join();
  ASSERT_TRUE(sent.load());

  ASSERT_TRUE(h.pump_until([&] {
    return h.door.stats().closed == 1 && h.door.open_connections() == 0;
  }));
  EXPECT_EQ(h.door.stats().protocol_errors, 1u);  // torn frame != clean
  EXPECT_EQ(h.sunk_records, 0u);  // the half-batch never reached the sink
  ::unlink(h.door.endpoint().path.c_str());
}

TEST(FrontDoor, SlowlorisClosedByIdleSweep) {
  // A slowloris holds the connection with a forever-incomplete frame.
  // Virtual time drives the sweep deterministically: no real waiting.
  VirtualClock vclk;
  FrontDoorConfig cfg = door_cfg("loris");
  cfg.clock = &vclk;
  cfg.idle_timeout = 1'000ms;
  DoorHarness h(cfg);
  std::string err;
  ASSERT_TRUE(h.start(&err)) << err;

  std::atomic<bool> reaped{false};
  ClientLog log;
  std::thread client([&] {
    std::string cerr;
    net::Socket s = net::connect_with_retry(h.door.endpoint(), 5'000ms,
                                            &cerr);
    log.expect(s.valid(), "connect: " + cerr);
    if (log.ok()) {
      ClientHelloMsg m;
      m.tenant = "loris";
      const auto buf =
          net::encode_frame(wire(ClientMsgType::kClientHello), encode(m));
      // A teasing prefix: enough to buffer, never a complete frame.
      log.expect(net::send_all(s, buf.data(), buf.size() / 2),
                 "partial send failed");
      log.done = true;
      // Hold the socket open until the server has swept us.
      while (!reaped.load()) std::this_thread::sleep_for(1ms);
    } else {
      log.done = true;
    }
  });

  // Let the partial frame arrive, then age the connection past the
  // timeout and sweep.
  ASSERT_TRUE(h.pump_until([&] {
    return log.done.load() && h.door.stats().accepted == 1;
  }));
  for (int i = 0; i < 20; ++i) h.loop.run_once(1ms);
  vclk.advance(2'000ms);
  h.door.sweep_idle();
  ASSERT_TRUE(h.pump_until([&] { return h.door.open_connections() == 0; }));
  reaped = true;
  client.join();
  EXPECT_TRUE(log.ok()) << log.fail;
  EXPECT_EQ(h.door.stats().idle_closed, 1u);
  ::unlink(h.door.endpoint().path.c_str());
}

TEST(FrontDoor, CapacityLimitRefusesExtraClients) {
  FrontDoorConfig cfg = door_cfg("capacity");
  cfg.max_connections = 1;
  DoorHarness h(cfg);
  std::string err;
  ASSERT_TRUE(h.start(&err)) << err;

  ClientLog log;
  std::thread client([&] {
    std::string cerr;
    net::FrameConn a =
        net::FrameConn::connect(h.door.endpoint(), 5'000ms, &cerr);
    log.expect(a.valid(), "client A connect: " + cerr);
    ClientHelloAckMsg hack;
    if (log.ok()) log.expect(hello(a, "alice", hack), "A hello failed");
    if (log.ok()) {
      // B is over capacity: the server closes its socket instead of
      // serving it, so B's hello never gets an ack.
      net::FrameConn b =
          net::FrameConn::connect(h.door.endpoint(), 5'000ms, &cerr);
      log.expect(b.valid(), "client B connect: " + cerr);
      if (log.ok()) {
        ClientHelloMsg m;
        m.tenant = "bob";
        b.write_frame(wire(ClientMsgType::kClientHello), encode(m));
        net::Frame f;
        log.expect(!b.read_frame(f), "over-capacity client got served");
      }
      a.write_frame(wire(ClientMsgType::kClientBye), {});
    }
    log.done = true;
  });

  ASSERT_TRUE(h.pump_until([&] {
    return log.done.load() && h.door.open_connections() == 0;
  }));
  client.join();
  EXPECT_TRUE(log.ok()) << log.fail;
  EXPECT_EQ(h.door.stats().accepted, 1u);
  EXPECT_EQ(h.door.stats().refused_capacity, 1u);
  ::unlink(h.door.endpoint().path.c_str());
}

}  // namespace
}  // namespace fastjoin::server
