// Fuzz harness: every worker wire codec in net/wire.hpp.
//
// The first input byte selects one of the eleven message types and one
// of two modes:
//   raw        — the rest of the input is decoded directly. When decode
//                accepts, the codec must be canonical: encode(decoded)
//                reproduces the input bytes exactly, and the
//                decode→encode→decode fixpoint holds.
//   structured — a message is built from fuzz-drawn fields, then
//                decode(encode(m)) == m must hold, every proper prefix
//                of the encoding must be rejected (single-byte
//                truncation included), and one trailing garbage byte
//                must be rejected.
#include <cstdint>
#include <vector>

#include "net/wire.hpp"
#include "support/fuzz_input.hpp"
#include "support/msg_equal.hpp"

using namespace fastjoin;
using fastjoin::fuzz::FuzzSource;
using fastjoin::fuzz::eq;

namespace {

constexpr std::uint32_t kMaxVec = 24;

Record draw_record(FuzzSource& src) {
  Record r;
  r.key = src.u64();
  r.seq = src.u64();
  r.payload = src.u64();
  r.ts = static_cast<SimTime>(src.u64());
  r.side = static_cast<Side>(src.below(2));
  return r;
}

net::WireTuple draw_tuple(FuzzSource& src) {
  net::WireTuple t;
  t.side = static_cast<Side>(src.below(2));
  t.key = src.u64();
  t.tuple.seq = src.u64();
  t.tuple.payload = src.u64();
  t.tuple.ts = static_cast<SimTime>(src.u64());
  t.tuple.subwindow = src.u32();
  return t;
}

/// Raw-mode properties for one codec over the unconsumed input.
template <typename M>
void check_raw(FuzzSource& src) {
  const std::vector<std::byte> payload = src.rest();
  M m;
  if (!decode(payload, m)) return;
  // Canonical: a payload the decoder accepts is exactly what the
  // encoder emits for the decoded value (fixed-width fields, length-
  // prefixed vectors, no trailing slack — r.done() guarantees it).
  const std::vector<std::byte> re = encode(m);
  FUZZ_REQUIRE(re == payload, "encode(decode(p)) == p for accepted p");
  M m2;
  FUZZ_REQUIRE(decode(re, m2), "decode-encode-decode fixpoint decodes");
  FUZZ_REQUIRE(eq(m, m2), "decode-encode-decode fixpoint is stable");
}

/// Structured-mode properties for one built message.
template <typename M>
void check_structured(const M& m) {
  const std::vector<std::byte> enc = encode(m);
  M back;
  FUZZ_REQUIRE(decode(enc, back), "decode(encode(m)) accepts");
  FUZZ_REQUIRE(eq(m, back), "decode(encode(m)) == m");
  // Any proper prefix — in particular the one-byte truncation — fails.
  for (std::size_t cut = 0; cut < enc.size(); ++cut) {
    std::vector<std::byte> trunc(enc.begin(),
                                 enc.begin() + static_cast<std::ptrdiff_t>(cut));
    M scratch;
    FUZZ_REQUIRE(!decode(trunc, scratch), "every truncation rejected");
  }
  std::vector<std::byte> padded = enc;
  padded.push_back(std::byte{0});
  M scratch;
  FUZZ_REQUIRE(!decode(padded, scratch), "trailing garbage rejected");
}

void run_type(std::uint8_t selector, FuzzSource& src) {
  const bool structured = (selector & 1) != 0;
  switch ((selector >> 1) % 11) {
    case 0: {
      if (!structured) return check_raw<net::HelloMsg>(src);
      net::HelloMsg m;
      m.worker_id = src.u32();
      m.pid = src.u64();
      return check_structured(m);
    }
    case 1: {
      if (!structured) return check_raw<net::HelloAckMsg>(src);
      net::HelloAckMsg m;
      m.worker_id = src.u32();
      m.workers = src.u32();
      m.collect_matches = src.u8();
      return check_structured(m);
    }
    case 2: {
      if (!structured) return check_raw<net::DataBatchMsg>(src);
      net::DataBatchMsg m;
      const std::uint32_t n = src.below(kMaxVec);
      for (std::uint32_t i = 0; i < n; ++i) {
        net::DataEntry e;
        e.offset = src.u64();
        // Decode requires a delivery half; keep the draw in-domain.
        e.flags = static_cast<std::uint8_t>(
            (src.u8() & (net::kSuppressEmit | net::kDedupStore)) |
            (1 + src.below(3)));
        e.rec = draw_record(src);
        m.entries.push_back(e);
      }
      return check_structured(m);
    }
    case 3: {
      if (!structured) return check_raw<net::ExtractMsg>(src);
      net::ExtractMsg m;
      m.mig_id = src.u64();
      m.side = static_cast<Side>(src.below(2));
      const std::uint32_t n = src.below(kMaxVec);
      for (std::uint32_t i = 0; i < n; ++i) m.keys.push_back(src.u64());
      return check_structured(m);
    }
    case 4: {
      if (!structured) return check_raw<net::ExtractBatchMsg>(src);
      net::ExtractBatchMsg m;
      m.mig_id = src.u64();
      m.consumed_offset = src.u64();
      const std::uint32_t n = src.below(kMaxVec);
      for (std::uint32_t i = 0; i < n; ++i) {
        m.tuples.push_back(draw_tuple(src));
      }
      return check_structured(m);
    }
    case 5: {
      if (!structured) return check_raw<net::AbsorbMsg>(src);
      net::AbsorbMsg m;
      m.mig_id = src.u64();
      const std::uint32_t n = src.below(kMaxVec);
      for (std::uint32_t i = 0; i < n; ++i) {
        m.tuples.push_back(draw_tuple(src));
      }
      return check_structured(m);
    }
    case 6: {
      if (!structured) return check_raw<net::AbsorbAckMsg>(src);
      net::AbsorbAckMsg m;
      m.mig_id = src.u64();
      return check_structured(m);
    }
    case 7: {
      if (!structured) return check_raw<net::CheckpointMsg>(src);
      net::CheckpointMsg m;
      m.ckpt_id = src.u64();
      return check_structured(m);
    }
    case 8: {
      if (!structured) return check_raw<net::SnapshotMsg>(src);
      net::SnapshotMsg m;
      m.ckpt_id = src.u64();
      m.consumed_offset = src.u64();
      m.emit_offset = src.u64();
      const std::uint32_t n = src.below(kMaxVec);
      for (std::uint32_t i = 0; i < n; ++i) {
        m.tuples.push_back(draw_tuple(src));
      }
      return check_structured(m);
    }
    case 9: {
      if (!structured) return check_raw<net::MatchBatchMsg>(src);
      net::MatchBatchMsg m;
      m.emit_offset = src.u64();
      m.count = src.u64();
      const std::uint32_t n = src.below(kMaxVec);
      for (std::uint32_t i = 0; i < n; ++i) {
        MatchPair p;
        p.key = src.u64();
        p.r_seq = src.u64();
        p.s_seq = src.u64();
        m.pairs.push_back(p);
      }
      return check_structured(m);
    }
    case 10: {
      if (!structured) return check_raw<net::FinalMsg>(src);
      net::FinalMsg m;
      m.stores = src.u64();
      m.probes = src.u64();
      m.matches = src.u64();
      m.suppressed = src.u64();
      m.dedup_skipped = src.u64();
      m.absorbed = src.u64();
      return check_structured(m);
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzSource src(data, size);
  const std::uint8_t selector = src.u8();
  run_type(selector, src);
  return 0;
}
