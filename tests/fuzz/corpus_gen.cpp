// corpus_gen: writes the committed seed corpora under
// tests/fuzz/corpus/{frame,wire,client,frontdoor,streamlog}.
//
//   corpus_gen <corpus-root>
//
// Seeds are deterministic and structure-bearing: for the codec
// harnesses one raw-mode and one structured-mode input per message
// type (the mode/type selector byte is the harnesses' first byte), for
// the frame harness one input per mode, and op scripts for the
// frontdoor/streamlog harnesses. Regenerate any time the wire format
// grows a type — the parity lint will already be failing by then.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/wire.hpp"
#include "server/protocol.hpp"

using namespace fastjoin;
namespace fs = std::filesystem;

namespace {

void write_seed(const fs::path& dir, const std::string& name,
                const std::vector<std::uint8_t>& bytes) {
  fs::create_directories(dir);
  std::ofstream f(dir / name, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

void append_bytes(std::vector<std::uint8_t>& out,
                  const std::vector<std::byte>& b) {
  for (const std::byte x : b) {
    out.push_back(static_cast<std::uint8_t>(x));
  }
}

/// Selector byte for the codec harnesses: bit 0 = structured mode,
/// bits 1.. = type index.
std::uint8_t selector(std::uint32_t type_idx, bool structured) {
  return static_cast<std::uint8_t>((type_idx << 1) | (structured ? 1 : 0));
}

/// A run of pseudo-field bytes for structured-mode seeds: enough
/// material for the harness's field draws, patterned so mutations have
/// structure to chew on.
std::vector<std::uint8_t> field_bytes(std::size_t n, std::uint8_t salt) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(salt + i * 7);
  }
  return v;
}

net::WireTuple sample_tuple(std::uint32_t i) {
  net::WireTuple t;
  t.side = (i & 1) ? Side::kS : Side::kR;
  t.key = 100 + i;
  t.tuple.seq = 1000 + i;
  t.tuple.payload = 42 * i;
  t.tuple.ts = static_cast<SimTime>(5 + i);
  t.tuple.subwindow = i % 3;
  return t;
}

void gen_wire(const fs::path& dir) {
  // Raw-mode seeds: selector byte + a canonical encoding per type.
  auto raw_seed = [&](std::uint32_t idx, const std::string& name,
                      const std::vector<std::byte>& payload) {
    std::vector<std::uint8_t> bytes{selector(idx, false)};
    append_bytes(bytes, payload);
    write_seed(dir, "raw-" + name, bytes);
    // Structured-mode seed for the same type: selector + field material.
    write_seed(dir, "structured-" + name,
               [&] {
                 std::vector<std::uint8_t> s{selector(idx, true)};
                 const auto f = field_bytes(96, static_cast<std::uint8_t>(idx));
                 s.insert(s.end(), f.begin(), f.end());
                 return s;
               }());
  };

  net::HelloMsg hello{3, 4242};
  raw_seed(0, "hello", encode(hello));
  net::HelloAckMsg hello_ack{3, 8, 1};
  raw_seed(1, "hello_ack", encode(hello_ack));
  net::DataBatchMsg batch;
  for (std::uint32_t i = 0; i < 3; ++i) {
    net::DataEntry e;
    e.offset = 10 + i;
    e.flags = static_cast<std::uint8_t>(
        (i % 2 ? net::kDeliverProbe : net::kDeliverStore) |
        (i == 2 ? net::kDedupStore : 0));
    e.rec = Record{7 + i, 70 + i, 700 + i, static_cast<SimTime>(i),
                   (i & 1) ? Side::kS : Side::kR};
    batch.entries.push_back(e);
  }
  raw_seed(2, "data_batch", encode(batch));
  net::ExtractMsg extract;
  extract.mig_id = 9;
  extract.side = Side::kS;
  extract.keys = {1, 2, 3};
  raw_seed(3, "extract", encode(extract));
  net::ExtractBatchMsg eb;
  eb.mig_id = 9;
  eb.consumed_offset = 55;
  eb.tuples = {sample_tuple(0), sample_tuple(1)};
  raw_seed(4, "extract_batch", encode(eb));
  net::AbsorbMsg absorb;
  absorb.mig_id = 9;
  absorb.tuples = {sample_tuple(2)};
  raw_seed(5, "absorb", encode(absorb));
  net::AbsorbAckMsg absorb_ack{9};
  raw_seed(6, "absorb_ack", encode(absorb_ack));
  net::CheckpointMsg ckpt{31};
  raw_seed(7, "checkpoint", encode(ckpt));
  net::SnapshotMsg snap;
  snap.ckpt_id = 31;
  snap.consumed_offset = 77;
  snap.emit_offset = 77;
  snap.tuples = {sample_tuple(3), sample_tuple(4)};
  raw_seed(8, "snapshot", encode(snap));
  net::MatchBatchMsg mb;
  mb.emit_offset = 88;
  mb.count = 2;
  mb.pairs = {MatchPair{1, 2, 3}, MatchPair{4, 5, 6}};
  raw_seed(9, "match_batch", encode(mb));
  net::FinalMsg fin{10, 11, 12, 1, 2, 3};
  raw_seed(10, "final", encode(fin));
}

void gen_client(const fs::path& dir) {
  auto raw_seed = [&](std::uint32_t idx, const std::string& name,
                      const std::vector<std::byte>& payload) {
    std::vector<std::uint8_t> bytes{selector(idx, false)};
    append_bytes(bytes, payload);
    write_seed(dir, "raw-" + name, bytes);
    write_seed(dir, "structured-" + name,
               [&] {
                 std::vector<std::uint8_t> s{selector(idx, true)};
                 const auto f = field_bytes(96, static_cast<std::uint8_t>(
                                                    0x40 + idx));
                 s.insert(s.end(), f.begin(), f.end());
                 return s;
               }());
  };

  server::ClientHelloMsg hello;
  hello.tenant = "alpha";
  hello.proto_version = 1;
  raw_seed(0, "client_hello", encode(hello));
  server::ClientHelloAckMsg hello_ack;
  hello_ack.ok = 1;
  hello_ack.max_batch_records = 8192;
  hello_ack.rate_bytes_per_sec = 1 << 20;
  hello_ack.burst_bytes = 1 << 16;
  raw_seed(1, "client_hello_ack", encode(hello_ack));
  server::AppendMsg append;
  append.req_id = 5;
  for (std::uint32_t i = 0; i < 3; ++i) {
    append.records.push_back(server::ClientRecord{
        (i & 1) ? Side::kS : Side::kR, 10 + i, 1000 + i});
  }
  raw_seed(2, "append", encode(append));
  server::AppendAckMsg ack{5, 40, 3, 0};
  raw_seed(3, "append_ack", encode(ack));
  server::RejectedMsg rej;
  rej.req_id = 5;
  rej.reason = static_cast<std::uint8_t>(server::RejectReason::kTenantRate);
  rej.retry_after_ms = 120;
  raw_seed(4, "rejected", encode(rej));
  server::QueryMsg query{6, 77, 8};
  raw_seed(5, "query", encode(query));
  server::QueryResultMsg qr;
  qr.req_id = 6;
  qr.key = 77;
  qr.r_tuples = 2;
  qr.s_tuples = 3;
  qr.owner_r = 0;
  qr.owner_s = 1;
  qr.as_of_ckpt = 4;
  qr.matches_total = 6;
  qr.recent = {MatchPair{77, 1, 2}};
  raw_seed(6, "query_result", encode(qr));
}

void gen_frame(const fs::path& dir) {
  // Mode 0 (raw): a valid frame followed by garbage.
  {
    std::vector<std::uint8_t> bytes{0};
    bytes.push_back(24);  // first chunk-length draw (u32 low byte)
    bytes.push_back(0);
    bytes.push_back(0);
    bytes.push_back(0);
    append_bytes(bytes, net::encode_frame(
                            3, std::vector<std::byte>(8, std::byte{7})));
    for (int i = 0; i < 12; ++i) bytes.push_back(0xEE);
    write_seed(dir, "raw-frame-then-junk", bytes);
  }
  // Mode 1 (valid stream): frame count + types + payload material.
  {
    std::vector<std::uint8_t> bytes{1};
    const auto f = field_bytes(128, 0x11);
    bytes.insert(bytes.end(), f.begin(), f.end());
    write_seed(dir, "valid-stream", bytes);
  }
  // Mode 2 (corruption): same material, corruption position drawn late.
  {
    std::vector<std::uint8_t> bytes{2};
    const auto f = field_bytes(160, 0x23);
    bytes.insert(bytes.end(), f.begin(), f.end());
    write_seed(dir, "corrupt-stream", bytes);
  }
}

void gen_frontdoor(const fs::path& dir) {
  // Op scripts: config draws first (see fuzz_frontdoor.cpp), then
  // (slot, op, args) tuples. Exact field alignment doesn't matter — the
  // harness treats every byte stream as a valid script — but starting
  // from plausible sequences gives mutation something to extend.
  auto script = [&](const std::string& name, std::uint8_t salt,
                    std::initializer_list<std::uint8_t> ops) {
    std::vector<std::uint8_t> bytes = field_bytes(14, salt);  // config
    for (std::uint8_t op : ops) {
      bytes.push_back(0);  // slot draw (u32 low byte consumed by below())
      bytes.push_back(0);
      bytes.push_back(0);
      bytes.push_back(0);
      bytes.push_back(op);
      const auto args = field_bytes(24, static_cast<std::uint8_t>(salt + op));
      bytes.insert(bytes.end(), args.begin(), args.end());
    }
    write_seed(dir, name, bytes);
  };
  script("happy-path", 0x31, {0, 1, 2, 3, 9, 4});
  script("junk-and-torn", 0x47, {0, 5, 6, 9, 8});
  script("idle-sweep", 0x59, {0, 1, 7, 9, 7, 9});
  script("capacity-churn", 0x6B, {0, 0, 0, 0, 8, 0, 9});
}

void gen_streamlog(const fs::path& dir) {
  // Directory scripts: config draws, then per-file (part, base-mode,
  // base, length, body) tuples; see fuzz_streamlog.cpp.
  write_seed(dir, "clean-chain", field_bytes(200, 0x71));
  write_seed(dir, "overlap-heavy", field_bytes(300, 0x83));
  write_seed(dir, "tiny", field_bytes(24, 0x95));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: corpus_gen <corpus-root>\n");
    return 2;
  }
  const fs::path root = argv[1];
  gen_wire(root / "wire");
  gen_client(root / "client");
  gen_frame(root / "frame");
  gen_frontdoor(root / "frontdoor");
  gen_streamlog(root / "streamlog");
  std::printf("corpus_gen: seeds written under %s\n", root.string().c_str());
  return 0;
}
