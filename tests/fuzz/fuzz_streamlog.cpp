// Fuzz harness: StreamLog file-backend recovery over hostile segment
// directories.
//
// The input scripts a directory: up to five p<part>_<base>.seg files
// with fuzz-drawn partitions, bases (including overlapping, duplicate,
// gapped, and near-2^64 ones) and raw contents (torn tails, mutated
// record bytes), plus unrelated junk files. StreamLog::open must
// recover a coherent log from whatever it finds:
//   * start_offset <= end_offset per partition;
//   * read() returns strictly increasing offsets inside [start, end)
//     and every record's side is in its two-value domain;
//   * an append after recovery lands at exactly end_offset;
//   * flush + reopen is idempotent — the second open sees the same
//     end offsets the first one produced.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ingest/stream_log.hpp"
#include "support/fuzz_input.hpp"

using namespace fastjoin;
using fastjoin::fuzz::FuzzSource;

namespace {

namespace fs = std::filesystem;

void write_file(const fs::path& p, const std::vector<std::byte>& bytes) {
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzSource src(data, size);

  const fs::path dir =
      "/tmp/fastjoin-fuzz-slog-" + std::to_string(::getpid());
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  if (ec) return 0;

  IngestConfig cfg;
  cfg.enabled = true;
  cfg.backend = SegmentBackend::kFile;
  cfg.dir = dir.string();
  cfg.partitions = 1 + src.below(2);
  cfg.segment_bytes = kLogRecordBytes * (1 + src.below(6));

  // Script the directory: segment files with hostile names and bodies.
  const std::uint32_t nfiles = src.below(6);
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    const std::uint32_t part = src.below(3);  // sometimes out of range
    std::uint64_t base = 0;
    switch (src.u8() % 4) {
      case 0: base = src.below(8); break;              // overlap-prone
      case 1: base = src.below(64); break;             // gap-prone
      case 2: base = src.u64(); break;                 // anywhere
      case 3: base = ~std::uint64_t{0} - src.below(64); break;  // wrap-prone
    }
    const std::size_t len =
        src.below(static_cast<std::uint32_t>(kLogRecordBytes * 5 + 3));
    std::vector<std::byte> body = src.bytes(len);
    body.resize(len, std::byte{0xA5});  // deterministic pad when dry
    write_file(dir / ("p" + std::to_string(part) + "_" +
                      std::to_string(base) + ".seg"),
               body);
  }
  if (src.u8() & 1) write_file(dir / "junk.seg", src.bytes(7));
  if (src.u8() & 1) write_file(dir / "px_3.seg", src.bytes(44));

  auto log = StreamLog::open(cfg);
  FUZZ_REQUIRE(log != nullptr, "open always yields a log");

  std::vector<std::uint64_t> ends;
  for (std::uint32_t p = 0; p < log->partitions(); ++p) {
    const std::uint64_t start = log->start_offset(p);
    const std::uint64_t end = log->end_offset(p);
    FUZZ_REQUIRE(start <= end, "start_offset <= end_offset");

    std::vector<LogRecord> out;
    const std::size_t got = log->read(p, 0, 4096, out);
    FUZZ_REQUIRE(got == out.size(), "read() count matches records");
    std::uint64_t prev = 0;
    bool first = true;
    for (const LogRecord& lr : out) {
      FUZZ_REQUIRE(lr.offset >= start && lr.offset < end,
                   "offsets inside [start, end)");
      FUZZ_REQUIRE(first || lr.offset > prev,
                   "offsets strictly increasing");
      FUZZ_REQUIRE(lr.rec.side == Side::kR || lr.rec.side == Side::kS,
                   "decoded side stays in domain");
      prev = lr.offset;
      first = false;
    }

    // The next append continues the recovered chain exactly.
    Record r;
    r.key = 7;
    r.seq = 9;
    r.side = Side::kR;
    const std::uint64_t off = log->append(p, r);
    FUZZ_REQUIRE(off == end, "append after recovery lands at end_offset");
    ends.push_back(log->end_offset(p));
  }

  log->flush_all();
  auto log2 = StreamLog::open(cfg);
  FUZZ_REQUIRE(log2 != nullptr, "reopen always yields a log");
  for (std::uint32_t p = 0; p < log2->partitions(); ++p) {
    FUZZ_REQUIRE(log2->end_offset(p) == ends[p],
                 "reopen is idempotent on end offsets");
    FUZZ_REQUIRE(log2->start_offset(p) <= log2->end_offset(p),
                 "reopened start <= end");
  }

  log2.reset();
  log.reset();
  fs::remove_all(dir, ec);
  return 0;
}
