// Fuzz harness: every client codec in server/protocol.hpp.
//
// Same shape as fuzz_wire.cpp — the first byte selects type and mode —
// plus the tenant-string rules: structured ClientHello draws tenants up
// to 300 bytes and asserts the decoder's 256-byte cap (a too-long
// tenant encodes fine but must be refused on decode).
#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.hpp"
#include "support/fuzz_input.hpp"
#include "support/msg_equal.hpp"

using namespace fastjoin;
using fastjoin::fuzz::FuzzSource;
using fastjoin::fuzz::eq;

namespace {

constexpr std::uint32_t kMaxVec = 24;
constexpr std::size_t kMaxTenantBytes = 256;  // decoder's cap

template <typename M>
void check_raw(FuzzSource& src) {
  const std::vector<std::byte> payload = src.rest();
  M m;
  if (!decode(payload, m)) return;
  const std::vector<std::byte> re = encode(m);
  FUZZ_REQUIRE(re == payload, "encode(decode(p)) == p for accepted p");
  M m2;
  FUZZ_REQUIRE(decode(re, m2), "decode-encode-decode fixpoint decodes");
  FUZZ_REQUIRE(eq(m, m2), "decode-encode-decode fixpoint is stable");
}

template <typename M>
void check_structured(const M& m) {
  const std::vector<std::byte> enc = encode(m);
  M back;
  FUZZ_REQUIRE(decode(enc, back), "decode(encode(m)) accepts");
  FUZZ_REQUIRE(eq(m, back), "decode(encode(m)) == m");
  for (std::size_t cut = 0; cut < enc.size(); ++cut) {
    std::vector<std::byte> trunc(enc.begin(),
                                 enc.begin() + static_cast<std::ptrdiff_t>(cut));
    M scratch;
    FUZZ_REQUIRE(!decode(trunc, scratch), "every truncation rejected");
  }
  std::vector<std::byte> padded = enc;
  padded.push_back(std::byte{0});
  M scratch;
  FUZZ_REQUIRE(!decode(padded, scratch), "trailing garbage rejected");
}

void run_type(std::uint8_t selector, FuzzSource& src) {
  const bool structured = (selector & 1) != 0;
  switch ((selector >> 1) % 7) {
    case 0: {
      if (!structured) return check_raw<server::ClientHelloMsg>(src);
      server::ClientHelloMsg m;
      const std::uint32_t len = src.below(301);
      for (std::uint32_t i = 0; i < len; ++i) {
        m.tenant.push_back(static_cast<char>(src.u8()));
      }
      m.proto_version = src.u32();
      if (m.tenant.size() > kMaxTenantBytes) {
        // Encodable but not decodable: the trust boundary refuses
        // tenants past the cap no matter what a client sends.
        server::ClientHelloMsg scratch;
        FUZZ_REQUIRE(!decode(encode(m), scratch),
                     "oversized tenant rejected");
        return;
      }
      return check_structured(m);
    }
    case 1: {
      if (!structured) return check_raw<server::ClientHelloAckMsg>(src);
      server::ClientHelloAckMsg m;
      m.ok = src.u8();
      m.reason = src.u8();
      m.max_batch_records = src.u32();
      m.rate_bytes_per_sec = src.u64();
      m.burst_bytes = src.u64();
      return check_structured(m);
    }
    case 2: {
      if (!structured) return check_raw<server::AppendMsg>(src);
      server::AppendMsg m;
      m.req_id = src.u64();
      const std::uint32_t n = src.below(kMaxVec);
      for (std::uint32_t i = 0; i < n; ++i) {
        server::ClientRecord rec;
        rec.side = static_cast<Side>(src.below(2));
        rec.key = src.u64();
        rec.payload = src.u64();
        m.records.push_back(rec);
      }
      return check_structured(m);
    }
    case 3: {
      if (!structured) return check_raw<server::AppendAckMsg>(src);
      server::AppendAckMsg m;
      m.req_id = src.u64();
      m.first_offset = src.u64();
      m.appended = src.u64();
      m.parked = src.u64();
      return check_structured(m);
    }
    case 4: {
      if (!structured) return check_raw<server::RejectedMsg>(src);
      server::RejectedMsg m;
      m.req_id = src.u64();
      m.reason = src.u8();
      m.retry_after_ms = src.u32();
      return check_structured(m);
    }
    case 5: {
      if (!structured) return check_raw<server::QueryMsg>(src);
      server::QueryMsg m;
      m.req_id = src.u64();
      m.key = src.u64();
      m.max_recent = src.u32();
      return check_structured(m);
    }
    case 6: {
      if (!structured) return check_raw<server::QueryResultMsg>(src);
      server::QueryResultMsg m;
      m.req_id = src.u64();
      m.key = src.u64();
      m.r_tuples = src.u64();
      m.s_tuples = src.u64();
      m.owner_r = src.u32();
      m.owner_s = src.u32();
      m.as_of_ckpt = src.u64();
      m.matches_total = src.u64();
      const std::uint32_t n = src.below(kMaxVec);
      for (std::uint32_t i = 0; i < n; ++i) {
        MatchPair p;
        p.key = src.u64();
        p.r_seq = src.u64();
        p.s_seq = src.u64();
        m.recent.push_back(p);
      }
      return check_structured(m);
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzSource src(data, size);
  const std::uint8_t selector = src.u8();
  run_type(selector, src);
  return 0;
}
