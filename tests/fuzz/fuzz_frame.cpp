// Fuzz harness: frame reassembly (net/frame.hpp FrameDecoder).
//
// Three structure-aware modes, selected by the first input byte:
//   0  raw      — arbitrary bytes fed in arbitrary chunk sizes; the
//                 decoder must never crash, never deliver an oversized
//                 payload, and stay sticky once broken.
//   1  valid    — a multi-frame stream built from the input is
//                 reassembled across arbitrary chunking; exactly those
//                 frames must come back, byte-identical, with no
//                 residue (mid_frame() false, not broken).
//   2  corrupt  — one bit of a valid stream is flipped; everything
//                 before the corrupted frame must be delivered intact,
//                 and a payload/CRC/magic/flags flip must break the
//                 stream at exactly that frame (CRC32C always catches
//                 single-bit payload errors). The frame type is not
//                 CRC-covered — a type flip documents itself here: the
//                 stream survives with only that frame's type altered.
#include <cstdint>
#include <cstring>
#include <vector>

#include "net/frame.hpp"
#include "support/fuzz_input.hpp"

using fastjoin::fuzz::FuzzSource;
using fastjoin::net::Frame;
using fastjoin::net::FrameDecoder;
using fastjoin::net::encode_frame;

namespace {

constexpr std::uint32_t kMaxPayload = 1u << 12;

/// Feed `stream` in fuzz-drawn chunk sizes; returns decoder state.
void feed_chunked(FrameDecoder& dec, const std::vector<std::byte>& stream,
                  FuzzSource& src, std::vector<Frame>& out) {
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(1 + src.below(255), stream.size() - pos);
    const bool ok = dec.feed(stream.data() + pos, chunk, out);
    FUZZ_REQUIRE(ok == !dec.broken(), "feed() result mirrors broken()");
    if (dec.broken()) return;
    pos += chunk;
  }
}

struct BuiltStream {
  std::vector<std::byte> bytes;
  std::vector<Frame> frames;
  std::vector<std::size_t> starts;  ///< byte offset of each frame
};

/// Up to 8 valid frames with fuzz-drawn types and payloads.
BuiltStream build_stream(FuzzSource& src) {
  BuiltStream b;
  const std::uint32_t k = src.below(8);
  for (std::uint32_t i = 0; i < k; ++i) {
    Frame f;
    f.type = src.u16();
    f.payload = src.bytes(src.below(64));
    b.starts.push_back(b.bytes.size());
    const auto enc = encode_frame(f.type, f.payload);
    b.bytes.insert(b.bytes.end(), enc.begin(), enc.end());
    b.frames.push_back(std::move(f));
  }
  return b;
}

void check_raw(FuzzSource& src) {
  FrameDecoder dec(kMaxPayload);
  std::vector<Frame> out;
  // Interleave: draw a chunk length, then feed that many raw bytes.
  while (!src.empty() && !dec.broken()) {
    const std::size_t n = 1 + src.below(255);
    const auto chunk = src.bytes(n);
    if (chunk.empty()) break;
    const bool ok = dec.feed(chunk.data(), chunk.size(), out);
    FUZZ_REQUIRE(ok == !dec.broken(), "feed() result mirrors broken()");
  }
  for (const Frame& f : out) {
    FUZZ_REQUIRE(f.payload.size() <= kMaxPayload,
                 "no oversized payload delivered");
  }
  FUZZ_REQUIRE(dec.frames_decoded() == out.size(),
               "frames_decoded matches deliveries");
  if (dec.broken()) {
    // Sticky: further input is ignored and refused.
    std::vector<Frame> more;
    const std::byte junk[4] = {};
    FUZZ_REQUIRE(!dec.feed(junk, sizeof junk, more), "broken is sticky");
    FUZZ_REQUIRE(more.empty(), "no frames after breakage");
    FUZZ_REQUIRE(!dec.error().empty(), "broken stream has a reason");
  }
}

void check_valid(FuzzSource& src) {
  const BuiltStream b = build_stream(src);
  FrameDecoder dec(kMaxPayload);
  std::vector<Frame> out;
  feed_chunked(dec, b.bytes, src, out);
  FUZZ_REQUIRE(!dec.broken(), "valid stream never breaks the decoder");
  FUZZ_REQUIRE(out.size() == b.frames.size(), "every frame delivered");
  for (std::size_t i = 0; i < out.size(); ++i) {
    FUZZ_REQUIRE(out[i].type == b.frames[i].type, "type preserved");
    FUZZ_REQUIRE(out[i].payload == b.frames[i].payload,
                 "payload preserved");
  }
  FUZZ_REQUIRE(!dec.mid_frame(), "no residue after a whole stream");
}

void check_corrupt(FuzzSource& src) {
  BuiltStream b = build_stream(src);
  if (b.bytes.empty()) return;
  const std::size_t pos = src.below(static_cast<std::uint32_t>(b.bytes.size()));
  const std::uint8_t bit = 1u << src.below(8);
  b.bytes[pos] ^= std::byte{bit};

  // Which frame owns the flipped byte, and where inside it?
  std::size_t affected = 0;
  while (affected + 1 < b.starts.size() && b.starts[affected + 1] <= pos) {
    ++affected;
  }
  const std::size_t in_frame = pos - b.starts[affected];

  FrameDecoder dec(kMaxPayload);
  std::vector<Frame> out;
  feed_chunked(dec, b.bytes, src, out);

  FUZZ_REQUIRE(out.size() <= b.frames.size(), "never more frames than sent");
  // Everything before the corrupted frame must arrive untouched.
  FUZZ_REQUIRE(out.size() >= affected, "prefix delivered");
  for (std::size_t i = 0; i < affected; ++i) {
    FUZZ_REQUIRE(out[i].type == b.frames[i].type, "prefix type intact");
    FUZZ_REQUIRE(out[i].payload == b.frames[i].payload,
                 "prefix payload intact");
  }
  if (in_frame < 4 || in_frame == 6 || in_frame == 7 || in_frame >= 12) {
    // Magic, flags, CRC field, or payload flip: CRC32C detects every
    // single-bit payload error and the header checks are exact, so the
    // decoder must break at precisely the corrupted frame.
    FUZZ_REQUIRE(dec.broken(), "corruption detected");
    FUZZ_REQUIRE(out.size() == affected, "broken exactly at the flip");
  } else if (in_frame == 4 || in_frame == 5) {
    // Type flip: the type field is outside the CRC (a documented
    // weakness this harness pins down) — the stream survives with only
    // that frame's type altered.
    FUZZ_REQUIRE(!dec.broken(), "type flip does not break framing");
    FUZZ_REQUIRE(out.size() == b.frames.size(), "all frames delivered");
    FUZZ_REQUIRE(out[affected].type == (b.frames[affected].type ^
                                        (static_cast<std::uint16_t>(bit)
                                         << ((in_frame - 4) * 8))),
                 "exactly the flipped type bit differs");
    FUZZ_REQUIRE(out[affected].payload == b.frames[affected].payload,
                 "payload still intact under a type flip");
  }
  // in_frame 8..11 (length field): the payload window shifts, so the
  // outcome depends on the bytes that follow; the prefix and no-crash
  // checks above are the guarantee.
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzSource src(data, size);
  switch (src.u8() % 3) {
    case 0: check_raw(src); break;
    case 1: check_valid(src); break;
    case 2: check_corrupt(src); break;
  }
  return 0;
}
