// Fuzz harness: a real FrontDoor on a real event loop, driven with
// fuzzer-scripted client traffic over a unix socket.
//
// Everything runs on one thread: clients are nonblocking sockets whose
// writes interleave with loop pumps, so the whole exchange is
// deterministic for a given input. The sink refuses batches when the
// fuzzer says so (exercising refund-on-backpressure), the clock is a
// VirtualClock the script can advance, and idle sweeps fire on demand.
//
// Invariants checked after every script:
//   * per-tenant SLO ledger exactness: offered == admitted + rejected,
//     for requests and for records;
//   * no leaked connections: once every client socket is closed and the
//     loop drained, open_connections() returns to zero;
//   * stop() is clean and idempotent — no crash, no sanitizer report.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "server/frontdoor.hpp"
#include "server/protocol.hpp"
#include "support/fuzz_input.hpp"

using namespace fastjoin;
using fastjoin::fuzz::FuzzSource;

namespace {

using std::chrono::milliseconds;

constexpr std::size_t kMaxClients = 4;
constexpr std::size_t kMaxOps = 96;

struct Client {
  net::Socket sock;
  bool open = false;
};

void pump(net::EventLoop& loop, int times) {
  for (int i = 0; i < times; ++i) loop.run_once(milliseconds(0));
}

/// One nonblocking write attempt; a partial write leaves a torn frame
/// on the wire, which is itself a case worth serving.
void send_bytes(Client& c, const std::vector<std::byte>& bytes) {
  if (!c.open) return;
  net::write_some(c.sock, bytes.data(), bytes.size());
}

void send_msg(Client& c, server::ClientMsgType t,
              const std::vector<std::byte>& payload) {
  send_bytes(c, net::encode_frame(static_cast<std::uint16_t>(t), payload));
}

/// Drain and discard whatever the server sent us so its write buffers
/// keep moving.
void drain(Client& c) {
  if (!c.open) return;
  std::byte buf[4096];
  for (;;) {
    const net::IoResult r = net::read_some(c.sock, buf, sizeof buf);
    if (r.n == 0 || !r.ok() || r.eof) break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FuzzSource src(data, size);

  VirtualClock clock;
  net::EventLoop loop;
  if (!loop.ok()) return 0;

  server::FrontDoorConfig cfg;
  cfg.endpoint.kind = net::Endpoint::Kind::kUnix;
  cfg.endpoint.path =
      "/tmp/fastjoin-fuzz-fd-" + std::to_string(::getpid()) + ".sock";
  cfg.clock = &clock;
  cfg.admission.clock = &clock;
  cfg.admission.tenant_rate_bytes_per_sec = 1 + src.u16();
  cfg.admission.tenant_burst_bytes = 1 + src.u16();
  cfg.admission.global_budget_bytes = 1 + src.u16();
  cfg.admission.max_batch_records = 1 + src.below(48);
  cfg.max_connections = 1 + src.below(kMaxClients);
  cfg.max_frame_payload = 1 << 14;
  cfg.idle_timeout = milliseconds(1 + src.below(50));
  cfg.max_query_recent = src.below(16);

  server::FrontDoor door(loop, cfg);

  std::uint64_t inflight = 0;
  // The sink's accept/refuse pattern is fuzz-chosen per call.
  auto sink = [&](const std::string&,
                  const std::vector<server::ClientRecord>& records,
                  server::AppendAckMsg* ack) {
    if ((src.u8() & 3) == 0) return false;  // downstream backpressure
    ack->first_offset = inflight;
    ack->appended = records.size();
    ack->parked = 0;
    inflight += records.size() * 17;
    return true;
  };
  auto query = [&](const server::QueryMsg& q, server::QueryResultMsg* out) {
    out->key = q.key;
    out->r_tuples = 1;
    out->s_tuples = 2;
    out->matches_total = 3;
  };
  auto load = [&]() { return inflight; };

  std::string err;
  if (!door.start(sink, query, load, &err)) {
    std::fprintf(stderr, "fuzz_frontdoor: start failed: %s\n", err.c_str());
    return 0;
  }

  const char* tenants[] = {"alpha", "beta", ""};
  std::vector<Client> clients(kMaxClients);
  auto connect_client = [&](std::size_t slot) {
    Client& c = clients[slot];
    if (c.open) return;
    std::string cerr;
    c.sock = net::connect_endpoint(cfg.endpoint, &cerr);
    if (!c.sock.valid()) return;
    net::set_nonblocking(c.sock, true);
    c.open = true;
  };

  std::size_t ops = 0;
  while (!src.empty() && ops++ < kMaxOps) {
    const std::size_t slot = src.below(kMaxClients);
    Client& c = clients[slot];
    switch (src.u8() % 10) {
      case 0:
        connect_client(slot);
        break;
      case 1: {  // hello
        server::ClientHelloMsg m;
        m.tenant = tenants[src.below(3)];
        m.proto_version = (src.u8() & 7) ? 1 : src.u32();
        send_msg(c, server::ClientMsgType::kClientHello, encode(m));
        break;
      }
      case 2: {  // append
        server::AppendMsg m;
        m.req_id = ops;
        const std::uint32_t n = src.below(16);
        for (std::uint32_t i = 0; i < n; ++i) {
          server::ClientRecord rec;
          rec.side = static_cast<Side>(src.below(2));
          rec.key = src.u8();
          rec.payload = src.u64();
          m.records.push_back(rec);
        }
        send_msg(c, server::ClientMsgType::kAppend, encode(m));
        break;
      }
      case 3: {  // query
        server::QueryMsg m;
        m.req_id = ops;
        m.key = src.u8();
        m.max_recent = src.below(64);
        send_msg(c, server::ClientMsgType::kQuery, encode(m));
        break;
      }
      case 4:  // bye
        send_msg(c, server::ClientMsgType::kClientBye, {});
        break;
      case 5:  // raw junk: unframed bytes straight onto the wire
        send_bytes(c, src.bytes(1 + src.below(32)));
        break;
      case 6: {  // torn frame: a valid header whose payload never comes
        const auto whole = net::encode_frame(
            static_cast<std::uint16_t>(server::ClientMsgType::kAppend),
            std::vector<std::byte>(8, std::byte{1}));
        const std::size_t cut = 1 + src.below(static_cast<std::uint32_t>(
                                     whole.size() - 1));
        send_bytes(c, {whole.begin(),
                       whole.begin() + static_cast<std::ptrdiff_t>(cut)});
        break;
      }
      case 7:  // time passes; idle reaping runs
        clock.advance(milliseconds(src.below(200)));
        door.sweep_idle();
        break;
      case 8:  // abrupt client close
        if (c.open) {
          c.sock.close();
          c.open = false;
        }
        break;
      case 9:  // let the loop breathe, pull replies
        pump(loop, 1 + src.below(4));
        for (auto& cl : clients) drain(cl);
        break;
    }
    pump(loop, 2);
  }

  // Drain everything in flight, then close all clients and verify the
  // door notices every EOF: no leaked connections.
  pump(loop, 8);
  for (auto& c : clients) {
    drain(c);
    if (c.open) {
      c.sock.close();
      c.open = false;
    }
  }
  for (int i = 0; i < 200 && door.open_connections() > 0; ++i) {
    pump(loop, 2);
  }
  FUZZ_REQUIRE(door.open_connections() == 0,
               "every closed client reaped — no leaked connections");

  const server::FrontDoorStats& st = door.stats();
  for (const auto& [tenant, ts] : st.tenants) {
    (void)tenant;
    FUZZ_REQUIRE(ts.offered_requests ==
                     ts.admitted_requests + ts.rejected_requests,
                 "SLO ledger exact: requests");
    FUZZ_REQUIRE(ts.offered_records ==
                     ts.admitted_records + ts.rejected_records,
                 "SLO ledger exact: records");
  }
  FUZZ_REQUIRE(st.closed <= st.accepted,
               "every close was an accepted connection");

  door.stop();
  pump(loop, 4);
  FUZZ_REQUIRE(door.open_connections() == 0, "stop() closes everything");
  door.stop();  // idempotent
  ::unlink(cfg.endpoint.path.c_str());
  return 0;
}
