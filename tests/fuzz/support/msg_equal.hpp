// Structural equality over every wire-visible message, for the
// decode(encode(m)) == m roundtrip assertions. Free functions rather
// than operator== so the product headers stay untouched.
#pragma once

#include "net/wire.hpp"
#include "server/protocol.hpp"

namespace fastjoin::fuzz {

inline bool eq(const Record& a, const Record& b) {
  return a.key == b.key && a.seq == b.seq && a.payload == b.payload &&
         a.ts == b.ts && a.side == b.side;
}

inline bool eq(const StoredTuple& a, const StoredTuple& b) {
  return a.seq == b.seq && a.payload == b.payload && a.ts == b.ts &&
         a.subwindow == b.subwindow;
}

inline bool eq(const MatchPair& a, const MatchPair& b) {
  return a.key == b.key && a.r_seq == b.r_seq && a.s_seq == b.s_seq;
}

inline bool eq(const net::WireTuple& a, const net::WireTuple& b) {
  return a.side == b.side && a.key == b.key && eq(a.tuple, b.tuple);
}

inline bool eq(const net::DataEntry& a, const net::DataEntry& b) {
  return a.offset == b.offset && a.flags == b.flags && eq(a.rec, b.rec);
}

inline bool eq(const server::ClientRecord& a, const server::ClientRecord& b) {
  return a.side == b.side && a.key == b.key && a.payload == b.payload;
}

template <typename T>
bool eq_vec(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!eq(a[i], b[i])) return false;
  }
  return true;
}

// ---- worker wire messages (net/wire.hpp) ----

inline bool eq(const net::HelloMsg& a, const net::HelloMsg& b) {
  return a.worker_id == b.worker_id && a.pid == b.pid;
}

inline bool eq(const net::HelloAckMsg& a, const net::HelloAckMsg& b) {
  return a.worker_id == b.worker_id && a.workers == b.workers &&
         a.collect_matches == b.collect_matches;
}

inline bool eq(const net::DataBatchMsg& a, const net::DataBatchMsg& b) {
  return eq_vec(a.entries, b.entries);
}

inline bool eq(const net::ExtractMsg& a, const net::ExtractMsg& b) {
  return a.mig_id == b.mig_id && a.side == b.side && a.keys == b.keys;
}

inline bool eq(const net::ExtractBatchMsg& a, const net::ExtractBatchMsg& b) {
  return a.mig_id == b.mig_id && a.consumed_offset == b.consumed_offset &&
         eq_vec(a.tuples, b.tuples);
}

inline bool eq(const net::AbsorbMsg& a, const net::AbsorbMsg& b) {
  return a.mig_id == b.mig_id && eq_vec(a.tuples, b.tuples);
}

inline bool eq(const net::AbsorbAckMsg& a, const net::AbsorbAckMsg& b) {
  return a.mig_id == b.mig_id;
}

inline bool eq(const net::CheckpointMsg& a, const net::CheckpointMsg& b) {
  return a.ckpt_id == b.ckpt_id;
}

inline bool eq(const net::SnapshotMsg& a, const net::SnapshotMsg& b) {
  return a.ckpt_id == b.ckpt_id && a.consumed_offset == b.consumed_offset &&
         a.emit_offset == b.emit_offset && eq_vec(a.tuples, b.tuples);
}

inline bool eq(const net::MatchBatchMsg& a, const net::MatchBatchMsg& b) {
  return a.emit_offset == b.emit_offset && a.count == b.count &&
         eq_vec(a.pairs, b.pairs);
}

inline bool eq(const net::FinalMsg& a, const net::FinalMsg& b) {
  return a.stores == b.stores && a.probes == b.probes &&
         a.matches == b.matches && a.suppressed == b.suppressed &&
         a.dedup_skipped == b.dedup_skipped && a.absorbed == b.absorbed;
}

// ---- client protocol messages (server/protocol.hpp) ----

inline bool eq(const server::ClientHelloMsg& a,
               const server::ClientHelloMsg& b) {
  return a.tenant == b.tenant && a.proto_version == b.proto_version;
}

inline bool eq(const server::ClientHelloAckMsg& a,
               const server::ClientHelloAckMsg& b) {
  return a.ok == b.ok && a.reason == b.reason &&
         a.max_batch_records == b.max_batch_records &&
         a.rate_bytes_per_sec == b.rate_bytes_per_sec &&
         a.burst_bytes == b.burst_bytes;
}

inline bool eq(const server::AppendMsg& a, const server::AppendMsg& b) {
  return a.req_id == b.req_id && eq_vec(a.records, b.records);
}

inline bool eq(const server::AppendAckMsg& a, const server::AppendAckMsg& b) {
  return a.req_id == b.req_id && a.first_offset == b.first_offset &&
         a.appended == b.appended && a.parked == b.parked;
}

inline bool eq(const server::RejectedMsg& a, const server::RejectedMsg& b) {
  return a.req_id == b.req_id && a.reason == b.reason &&
         a.retry_after_ms == b.retry_after_ms;
}

inline bool eq(const server::QueryMsg& a, const server::QueryMsg& b) {
  return a.req_id == b.req_id && a.key == b.key &&
         a.max_recent == b.max_recent;
}

inline bool eq(const server::QueryResultMsg& a,
               const server::QueryResultMsg& b) {
  return a.req_id == b.req_id && a.key == b.key &&
         a.r_tuples == b.r_tuples && a.s_tuples == b.s_tuples &&
         a.owner_r == b.owner_r && a.owner_s == b.owner_s &&
         a.as_of_ckpt == b.as_of_ckpt &&
         a.matches_total == b.matches_total && eq_vec(a.recent, b.recent);
}

}  // namespace fastjoin::fuzz
