// Standalone driver for the fuzz harnesses when no fuzzing engine is
// linked (the default: GCC has no libFuzzer). Two modes, composable:
//
//   fuzz_x corpus_dir [more dirs/files...]        replay every input
//   fuzz_x corpus_dir --runs N --seed S           + N deterministic
//                                                 mutation iterations
//   fuzz_x corpus_dir --max-seconds T             + wall-clock-bounded
//                                                 mutation loop
//
// Mutations are a seeded xorshift64 walk over the corpus (bit flips,
// byte stores, truncation, insertion, splices), so a given
// (corpus, seed, runs) triple is exactly reproducible. Before the
// process dies on a violated property or a sanitizer report, the
// input being executed is written to --artifact-dir (default '.') as
// crash-<n>; replaying is just `fuzz_x <artifact-file>`.
//
// Under Clang, CMake links -fsanitize=fuzzer instead of this file and
// the same LLVMFuzzerTestOneInput becomes a real coverage-guided
// libFuzzer target.
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

// The input currently executing, exposed to the crash handler.
const std::uint8_t* g_cur_data = nullptr;
std::size_t g_cur_len = 0;
char g_artifact_path[4096] = "./crash-input";

/// Async-signal-safe: dump the current input, then re-raise.
void crash_handler(int sig) {
  const int fd = ::open(g_artifact_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    std::size_t off = 0;
    while (off < g_cur_len) {
      const ssize_t n = ::write(fd, g_cur_data + off, g_cur_len - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

struct XorShift64 {
  std::uint64_t s;
  explicit XorShift64(std::uint64_t seed) : s(seed ? seed : 0x9E3779B97F4A7C15ull) {}
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::size_t below(std::size_t n) { return n ? next() % n : 0; }
};

constexpr std::size_t kMaxInput = 1u << 16;

void run_one(const std::vector<std::uint8_t>& input) {
  g_cur_data = input.data();
  g_cur_len = input.size();
  LLVMFuzzerTestOneInput(input.data(), input.size());
}

/// One mutation step: corpus pick (or the previous output) plus 1-8
/// edits drawn from the rng.
std::vector<std::uint8_t> mutate(const std::vector<std::vector<std::uint8_t>>& corpus,
                                 XorShift64& rng) {
  std::vector<std::uint8_t> m;
  if (!corpus.empty()) m = corpus[rng.below(corpus.size())];
  const std::size_t edits = 1 + rng.below(8);
  for (std::size_t e = 0; e < edits; ++e) {
    switch (rng.below(6)) {
      case 0:  // bit flip
        if (!m.empty()) m[rng.below(m.size())] ^= 1u << rng.below(8);
        break;
      case 1:  // byte store
        if (!m.empty()) m[rng.below(m.size())] = static_cast<std::uint8_t>(rng.next());
        break;
      case 2:  // truncate
        if (!m.empty()) m.resize(rng.below(m.size() + 1));
        break;
      case 3: {  // insert a short random run
        const std::size_t n = 1 + rng.below(16);
        const std::size_t at = rng.below(m.size() + 1);
        std::vector<std::uint8_t> ins(n);
        for (auto& b : ins) b = static_cast<std::uint8_t>(rng.next());
        m.insert(m.begin() + static_cast<std::ptrdiff_t>(at), ins.begin(),
                 ins.end());
        break;
      }
      case 4: {  // splice a window from another corpus entry
        if (corpus.empty()) break;
        const auto& other = corpus[rng.below(corpus.size())];
        if (other.empty()) break;
        const std::size_t from = rng.below(other.size());
        const std::size_t n = 1 + rng.below(other.size() - from);
        const std::size_t at = rng.below(m.size() + 1);
        m.insert(m.begin() + static_cast<std::ptrdiff_t>(at),
                 other.begin() + static_cast<std::ptrdiff_t>(from),
                 other.begin() + static_cast<std::ptrdiff_t>(from + n));
        break;
      }
      case 5: {  // overwrite with a u64 boundary value
        if (m.size() < 8) break;
        const std::uint64_t vals[] = {0ull, ~0ull, 0x7FFFFFFFull,
                                      0x80000000ull, 0xFFFFFFFFull,
                                      0x100000000ull};
        const std::uint64_t v = vals[rng.below(6)];
        std::memcpy(m.data() + rng.below(m.size() - 7), &v, 8);
        break;
      }
    }
    if (m.size() > kMaxInput) m.resize(kMaxInput);
  }
  return m;
}

bool load_file(const std::filesystem::path& p,
               std::vector<std::uint8_t>& out) {
  std::ifstream f(p, std::ios::binary);
  if (!f) return false;
  out.assign(std::istreambuf_iterator<char>(f),
             std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  long long runs = 0;
  long long max_seconds = 0;
  std::uint64_t seed = 1;
  std::string artifact_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : "";
    };
    if (a == "--runs") {
      runs = std::atoll(next());
    } else if (a == "--max-seconds") {
      max_seconds = std::atoll(next());
    } else if (a == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--artifact-dir") {
      artifact_dir = next();
    } else if (a == "--help") {
      std::fprintf(stderr,
                   "usage: %s [corpus-file-or-dir...] [--runs N] "
                   "[--max-seconds T] [--seed S] [--artifact-dir D]\n",
                   argv[0]);
      return 0;
    } else {
      inputs.emplace_back(a);
    }
  }

  std::snprintf(g_artifact_path, sizeof(g_artifact_path), "%s/crash-%d",
                artifact_dir.c_str(), static_cast<int>(::getpid()));
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGILL, SIGFPE}) {
    std::signal(sig, crash_handler);
  }

  // Replay pass: every corpus file, in sorted order, exactly once.
  std::vector<std::vector<std::uint8_t>> corpus;
  std::vector<std::filesystem::path> files;
  for (const auto& in : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(in, ec)) {
      for (const auto& ent : std::filesystem::directory_iterator(in, ec)) {
        if (ent.is_regular_file()) files.push_back(ent.path());
      }
    } else {
      files.push_back(in);
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& f : files) {
    std::vector<std::uint8_t> bytes;
    if (!load_file(f, bytes)) {
      std::fprintf(stderr, "fuzz: cannot read %s\n", f.string().c_str());
      return 2;
    }
    run_one(bytes);
    corpus.push_back(std::move(bytes));
  }
  std::fprintf(stderr, "fuzz: replayed %zu corpus inputs\n", corpus.size());

  // Mutation pass: bounded by --runs and/or --max-seconds.
  XorShift64 rng(seed);
  long long done = 0;
  const auto t0 = std::chrono::steady_clock::now();
  auto time_left = [&]() {
    if (max_seconds <= 0) return false;
    return std::chrono::steady_clock::now() - t0 <
           std::chrono::seconds(max_seconds);
  };
  while (done < runs || time_left()) {
    run_one(mutate(corpus, rng));
    ++done;
    if (runs > 0 && done >= runs && max_seconds <= 0) break;
  }
  if (done) std::fprintf(stderr, "fuzz: %lld mutated runs clean\n", done);
  return 0;
}
