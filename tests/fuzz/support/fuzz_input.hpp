// FuzzSource: a consuming cursor over the fuzzer's input bytes, plus
// the FUZZ_REQUIRE assertion macro shared by every harness.
//
// Draws past the end return zeros instead of failing — a short input is
// a valid (if boring) test case, never an error in the harness itself.
// FUZZ_REQUIRE aborts unconditionally (independent of NDEBUG) so a
// violated property is a crash both under libFuzzer and under the
// standalone driver, which is what turns it into a saved artifact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#define FUZZ_REQUIRE(cond, what)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "FUZZ_REQUIRE failed: %s (%s:%d)\n", what, \
                   __FILE__, __LINE__);                               \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

namespace fastjoin::fuzz {

class FuzzSource {
 public:
  FuzzSource(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}

  std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }
  bool empty() const { return p_ == end_; }

  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, 1);
    return v;
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    raw(&v, 2);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, 8);
    return v;
  }

  /// Draw in [0, n); n == 0 returns 0.
  std::uint32_t below(std::uint32_t n) { return n ? u32() % n : 0; }

  /// Up to `n` bytes; shorter when the source runs dry.
  std::vector<std::byte> bytes(std::size_t n) {
    n = n < remaining() ? n : remaining();
    std::vector<std::byte> out(n);
    if (n) std::memcpy(out.data(), p_, n);
    p_ += n;
    return out;
  }

  /// The rest of the input, unconsumed, as a byte vector.
  std::vector<std::byte> rest() { return bytes(remaining()); }

 private:
  void raw(void* out, std::size_t n) {
    const std::size_t have = remaining() < n ? remaining() : n;
    if (have) std::memcpy(out, p_, have);
    p_ += have;
  }
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace fastjoin::fuzz
