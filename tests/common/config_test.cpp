#include "common/config.hpp"

#include <gtest/gtest.h>

namespace fastjoin {
namespace {

TEST(Config, ParsesKeyValueArgs) {
  const char* argv[] = {"prog", "instances=48", "theta=2.2",
                        "name=fastjoin"};
  const Config cfg = Config::from_args(4, argv);
  EXPECT_EQ(cfg.get_int("instances", 0), 48);
  EXPECT_DOUBLE_EQ(cfg.get_double("theta", 0.0), 2.2);
  EXPECT_EQ(cfg.get_str("name", ""), "fastjoin");
}

TEST(Config, IgnoresMalformedArgs) {
  const char* argv[] = {"prog", "--flag", "=x", "plain"};
  const Config cfg = Config::from_args(4, argv);
  EXPECT_TRUE(cfg.entries().empty());
}

TEST(Config, FallbacksApply) {
  Config cfg;
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(cfg.get_str("missing", "dflt"), "dflt");
  EXPECT_TRUE(cfg.get_bool("missing", true));
}

TEST(Config, BadNumbersFallBack) {
  Config cfg;
  cfg.set("n", "notanumber");
  EXPECT_EQ(cfg.get_int("n", 3), 3);
  EXPECT_DOUBLE_EQ(cfg.get_double("n", 2.5), 2.5);
}

TEST(Config, BoolVariants) {
  Config cfg;
  for (const char* t : {"1", "true", "yes", "on", "TRUE", "Yes"}) {
    cfg.set("b", t);
    EXPECT_TRUE(cfg.get_bool("b", false)) << t;
  }
  for (const char* f : {"0", "false", "no", "off", "False"}) {
    cfg.set("b", f);
    EXPECT_FALSE(cfg.get_bool("b", true)) << f;
  }
  cfg.set("b", "maybe");
  EXPECT_TRUE(cfg.get_bool("b", true));  // unparsable -> fallback
}

TEST(Config, ValueMayContainEquals) {
  Config cfg;
  EXPECT_TRUE(cfg.parse_line("expr=a=b"));
  EXPECT_EQ(cfg.get_str("expr", ""), "a=b");
}

TEST(Config, HasAndLookup) {
  Config cfg;
  cfg.set("k", "v");
  EXPECT_TRUE(cfg.has("k"));
  EXPECT_FALSE(cfg.has("nope"));
  EXPECT_EQ(cfg.lookup("k").value(), "v");
  EXPECT_FALSE(cfg.lookup("nope").has_value());
}

}  // namespace
}  // namespace fastjoin
