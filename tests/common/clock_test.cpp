// Tests for the injectable protocol time source (common/clock.hpp):
// the real-clock singleton, VirtualClock semantics, and the contract
// the supervised-wait code depends on (sleep_for advances virtual time
// without blocking).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/clock.hpp"

namespace fastjoin {
namespace {

using namespace std::chrono_literals;

TEST(Clock, RealClockIsMonotoneAndSingleton) {
  Clock& a = real_clock();
  Clock& b = real_clock();
  EXPECT_EQ(&a, &b);
  const auto t0 = a.now();
  const auto t1 = a.now();
  EXPECT_GE(t1.count(), t0.count());
}

TEST(Clock, RealClockSleepActuallyWaits) {
  Clock& c = real_clock();
  const auto t0 = c.now();
  c.sleep_for(2ms);
  EXPECT_GE((c.now() - t0).count(), std::chrono::nanoseconds(2ms).count());
}

TEST(VirtualClock, StartsAtGivenOrigin) {
  VirtualClock zero;
  EXPECT_EQ(zero.now().count(), 0);
  VirtualClock later(5s);
  EXPECT_EQ(later.now(), std::chrono::nanoseconds(5s));
}

TEST(VirtualClock, SleepAdvancesInstantly) {
  VirtualClock clk;
  const auto wall0 = std::chrono::steady_clock::now();
  clk.sleep_for(30s);  // a real sleep here would hang the test
  const auto wall = std::chrono::steady_clock::now() - wall0;
  EXPECT_EQ(clk.now(), std::chrono::nanoseconds(30s));
  EXPECT_LT(wall, 1s);
}

TEST(VirtualClock, NegativeAndZeroSleepsDoNotMoveTime) {
  VirtualClock clk(1ms);
  clk.sleep_for(0ns);
  clk.sleep_for(-5ms);
  EXPECT_EQ(clk.now(), std::chrono::nanoseconds(1ms));
}

TEST(VirtualClock, AdvanceIsCumulative) {
  VirtualClock clk;
  clk.advance(10ms);
  clk.advance(5ms);
  EXPECT_EQ(clk.now(), std::chrono::nanoseconds(15ms));
}

TEST(VirtualClock, ConcurrentSleepersStayMonotoneAndSumExactly) {
  VirtualClock clk;
  constexpr int kThreads = 8;
  constexpr int kSleeps = 1000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&clk] {
      auto last = clk.now();
      for (int i = 0; i < kSleeps; ++i) {
        clk.sleep_for(1us);
        const auto now = clk.now();
        EXPECT_GE(now.count(), last.count());
        last = now;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(clk.now(), std::chrono::nanoseconds(1us) * kThreads * kSleeps);
}

}  // namespace
}  // namespace fastjoin
