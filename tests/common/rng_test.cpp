#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

namespace fastjoin {
namespace {

TEST(SplitMix64, Reproducible) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, KnownFirstOutput) {
  // Reference value for seed 1234567 from the public-domain reference
  // implementation.
  SplitMix64 rng(1234567);
  EXPECT_EQ(rng(), 6457827717110365317ULL);
}

TEST(Xoshiro256, Reproducible) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleMeanNearHalf) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, NextBelowUnbiased) {
  Xoshiro256 rng(11);
  const std::uint64_t n = 10;
  std::vector<int> counts(n, 0);
  const int total = 200'000;
  for (int i = 0; i < total; ++i) ++counts[rng.next_below(n)];
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], total / static_cast<int>(n), total / 100);
  }
}

TEST(Xoshiro256, NextBelowOneAlwaysZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, JumpDecorrelates) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  // Must plug into <random> distributions.
  Xoshiro256 rng(17);
  std::uniform_int_distribution<int> dist(1, 6);
  for (int i = 0; i < 100; ++i) {
    const int v = dist(rng);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
  }
}

}  // namespace
}  // namespace fastjoin
