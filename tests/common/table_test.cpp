#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fastjoin {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), std::int64_t{42}});
  t.add_row({std::string("b"), std::int64_t{7}});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({std::int64_t{1}, std::int64_t{2}});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsWrongWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::int64_t{1}}), std::invalid_argument);
}

TEST(Table, FormatsDoublesCompactly) {
  EXPECT_EQ(Table::format_cell(1.5), "1.500");
  EXPECT_EQ(Table::format_cell(0.0), "0.000");
  // Very large/small values switch to %.4g.
  EXPECT_EQ(Table::format_cell(1.234e10), "1.234e+10");
}

TEST(Table, CountsRowsAndCols) {
  Table t({"x", "y", "z"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({std::int64_t{1}, std::int64_t{2}, std::int64_t{3}});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(HumanCount, ScalesUnits) {
  EXPECT_EQ(human_count(950.0), "950.00");
  EXPECT_EQ(human_count(1'500.0), "1.50K");
  EXPECT_EQ(human_count(2'500'000.0), "2.50M");
  EXPECT_EQ(human_count(3'100'000'000.0), "3.10G");
}

}  // namespace
}  // namespace fastjoin
