#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <thread>
#include <unordered_map>
#include <vector>

namespace fastjoin {
namespace {

TEST(Arena, FirstAllocationFetchesOneChunk) {
  Arena arena;
  void* p = arena.allocate(64, 8);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.stats().chunk_allocs, 1u);
  EXPECT_EQ(arena.stats().bump_allocs, 1u);
  arena.deallocate(p, 64, 8);
}

TEST(Arena, FreelistRecyclesFreedBlock) {
  Arena arena;
  void* a = arena.allocate(48, 8);
  arena.deallocate(a, 48, 8);
  // Same size class (64-byte class holds 33..64) must reuse the block
  // without touching the bump pointer or the global allocator.
  void* b = arena.allocate(60, 8);
  EXPECT_EQ(a, b);
  EXPECT_EQ(arena.stats().freelist_allocs, 1u);
  EXPECT_EQ(arena.stats().bump_allocs, 1u);
  arena.deallocate(b, 60, 8);
}

TEST(Arena, DistinctSizeClassesDoNotAlias) {
  Arena arena;
  void* small = arena.allocate(16, 8);
  void* big = arena.allocate(1024, 8);
  EXPECT_NE(small, big);
  arena.deallocate(small, 16, 8);
  // A larger request must not be served from the 16-byte free list.
  void* big2 = arena.allocate(512, 8);
  EXPECT_NE(big2, small);
  arena.deallocate(big, 1024, 8);
  arena.deallocate(big2, 512, 8);
}

TEST(Arena, OversizeBlocksFallBackToGlobal) {
  Arena arena(/*chunk_bytes=*/1024);
  ASSERT_EQ(arena.max_block_bytes(), 512u);
  void* p = arena.allocate(600, 8);  // > max_block_bytes
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.stats().fallback_allocs, 1u);
  EXPECT_EQ(arena.stats().chunk_allocs, 0u);
  arena.deallocate(p, 600, 8);  // must route to ::operator delete
  EXPECT_EQ(arena.stats().frees, 1u);
}

TEST(Arena, OveralignedRequestsFallBackToGlobal) {
  Arena arena;
  void* p = arena.allocate(64, 64);  // stricter than max_align_t
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  EXPECT_EQ(arena.stats().fallback_allocs, 1u);
  arena.deallocate(p, 64, 64);
}

TEST(Arena, BudgetExhaustionStillServesAndRecycles) {
  // Budget admits exactly one 1KiB chunk; everything past it must be
  // served from the heap but stay arena-owned (freed on destruction,
  // recyclable through the free lists). ASan's leak check on this test
  // is the real assertion for ownership.
  Arena arena(/*chunk_bytes=*/1024, /*max_bytes=*/1024);
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) blocks.push_back(arena.allocate(64, 8));
  for (void* p : blocks) ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.stats().chunk_allocs, 1u);
  EXPECT_EQ(arena.stats().bytes_reserved, 1024u);
  EXPECT_GT(arena.stats().fallback_allocs, 0u);

  // Post-exhaustion blocks recycle like any other block.
  const std::uint64_t fallbacks = arena.stats().fallback_allocs;
  for (void* p : blocks) arena.deallocate(p, 64, 8);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    void* p = arena.allocate(64, 8);
    ASSERT_NE(p, nullptr);
    arena.deallocate(p, 64, 8);
  }
  EXPECT_EQ(arena.stats().fallback_allocs, fallbacks);
  EXPECT_GE(arena.stats().freelist_allocs, blocks.size());
}

TEST(Arena, ZeroByteAllocationIsServed) {
  Arena arena;
  void* p = arena.allocate(0, 1);
  ASSERT_NE(p, nullptr);
  arena.deallocate(p, 0, 1);
}

TEST(ArenaAllocator, NullArenaDegradesToGlobalAllocator) {
  ArenaAllocator<int> alloc;  // no arena
  std::deque<int, ArenaAllocator<int>> dq(alloc);
  for (int i = 0; i < 1000; ++i) dq.push_back(i);
  EXPECT_EQ(dq.size(), 1000u);
  EXPECT_EQ(dq.front(), 0);
  EXPECT_EQ(dq.back(), 999);
}

TEST(ArenaAllocator, DequeChurnRecyclesThroughArena) {
  Arena arena;
  {
    std::deque<int, ArenaAllocator<int>> dq{ArenaAllocator<int>(&arena)};
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 500; ++i) dq.push_back(i);
      while (!dq.empty()) dq.pop_front();
    }
  }
  const ArenaStats& s = arena.stats();
  EXPECT_GT(s.bump_allocs + s.freelist_allocs, 0u);
  // Steady-state churn must hit the free lists, not fresh chunks.
  EXPECT_GT(s.freelist_allocs, 0u);
  EXPECT_LE(s.chunk_allocs, 2u);
}

TEST(ArenaAllocator, UnorderedMapNodesLiveOnArena) {
  Arena arena;
  using Alloc = ArenaAllocator<std::pair<const int, int>>;
  {
    std::unordered_map<int, int, std::hash<int>, std::equal_to<int>,
                       Alloc>
        map(16, std::hash<int>(), std::equal_to<int>(), Alloc(&arena));
    for (int i = 0; i < 2000; ++i) map[i] = i * 2;
    EXPECT_EQ(map.at(1234), 2468);
  }
  EXPECT_GT(arena.stats().bump_allocs, 0u);
  EXPECT_EQ(arena.stats().frees,
            arena.stats().bump_allocs + arena.stats().freelist_allocs +
                arena.stats().fallback_allocs);
}

TEST(BufferPool, AcquireReleaseRecyclesCapacity) {
  BufferPool<int> pool;
  std::vector<int> buf = pool.acquire(128);
  EXPECT_EQ(pool.misses(), 1u);
  buf.assign(100, 7);
  const int* data = buf.data();
  pool.release(std::move(buf));
  EXPECT_EQ(pool.pooled(), 1u);
  std::vector<int> again = pool.acquire(64);
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_TRUE(again.empty());      // recycled buffers come back cleared
  EXPECT_EQ(again.data(), data);   // ...but keep their backing storage
  EXPECT_GE(again.capacity(), 100u);
}

TEST(BufferPool, CrossThreadReturnIsReissued) {
  // The live-engine pattern: a worker thread dies holding its drain
  // scratch, releases it on the way out, and the respawned worker (a
  // different thread) acquires the same storage.
  BufferPool<std::uint64_t> pool;
  std::vector<std::uint64_t> scratch = pool.acquire(256);
  scratch.push_back(42);
  const std::uint64_t* storage = scratch.data();

  std::thread dying([&pool, buf = std::move(scratch)]() mutable {
    pool.release(std::move(buf));
  });
  dying.join();
  ASSERT_EQ(pool.pooled(), 1u);

  std::vector<std::uint64_t> reissued;
  std::thread respawned([&pool, &reissued] {
    reissued = pool.acquire(16);
  });
  respawned.join();
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_EQ(reissued.data(), storage);
}

TEST(BufferPool, DropsBuffersBeyondMaxPooled) {
  BufferPool<int> pool(/*max_pooled=*/1);
  std::vector<int> a = pool.acquire(8);
  std::vector<int> b = pool.acquire(8);
  pool.release(std::move(a));
  pool.release(std::move(b));  // beyond the cap: freed, not pooled
  EXPECT_EQ(pool.pooled(), 1u);
}

TEST(BufferPool, EmptyBuffersAreNotPooled) {
  BufferPool<int> pool;
  pool.release(std::vector<int>{});
  EXPECT_EQ(pool.pooled(), 0u);
}

}  // namespace
}  // namespace fastjoin
