#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fastjoin {
namespace {

TEST(LogHistogram, EmptyReportsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.value_at_percentile(50), 0.0);
}

TEST(LogHistogram, SingleValue) {
  LogHistogram h;
  h.add(1000.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
  // Percentile estimate is bucket-midpoint-based; relative error is
  // bounded by the sub-bucket resolution (clamped to observed range).
  EXPECT_NEAR(h.value_at_percentile(50), 1000.0, 1000.0 * 0.05);
}

TEST(LogHistogram, PercentilesOfUniformSamples) {
  LogHistogram h(1.0, 1e7);
  Xoshiro256 rng(4);
  for (int i = 0; i < 100'000; ++i) {
    h.add(1.0 + rng.next_double() * 99'999.0);
  }
  EXPECT_NEAR(h.value_at_percentile(50), 50'000, 50'000 * 0.05);
  EXPECT_NEAR(h.value_at_percentile(99), 99'000, 99'000 * 0.05);
}

TEST(LogHistogram, RelativeErrorBounded) {
  LogHistogram h(1.0, 1e9, 64);
  for (double v : {5.0, 123.0, 4567.0, 1e6, 5e8}) {
    LogHistogram single(1.0, 1e9, 64);
    single.add(v);
    const double est = single.value_at_percentile(50);
    EXPECT_NEAR(est, v, v * 0.02) << "value " << v;
  }
  (void)h;
}

TEST(LogHistogram, ClampsOutOfRange) {
  LogHistogram h(10.0, 1000.0);
  h.add(1.0);      // below min -> clamped into first bucket
  h.add(1e9);      // above max -> clamped into last bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 1.0);   // raw min/max still tracked
  EXPECT_EQ(h.max(), 1e9);
}

TEST(LogHistogram, WeightedAdd) {
  LogHistogram h;
  h.add(100.0, 5);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 500.0);
}

TEST(LogHistogram, MergeCombines) {
  LogHistogram a, b;
  for (int i = 1; i <= 100; ++i) a.add(i);
  for (int i = 101; i <= 200; ++i) b.add(i);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 200.0);
  EXPECT_NEAR(a.value_at_percentile(50), 100.0, 10.0);
}

TEST(LogHistogram, ResetClears) {
  LogHistogram h;
  h.add(5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, MonotonePercentiles) {
  LogHistogram h;
  Xoshiro256 rng(9);
  for (int i = 0; i < 10'000; ++i) h.add(1.0 + rng.next_below(100'000));
  double prev = 0.0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double v = h.value_at_percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

}  // namespace
}  // namespace fastjoin
