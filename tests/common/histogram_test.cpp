#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace fastjoin {
namespace {

TEST(LogHistogram, EmptyReportsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.value_at_percentile(50), 0.0);
}

TEST(LogHistogram, SingleValue) {
  LogHistogram h;
  h.add(1000.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
  // Percentile estimate is bucket-midpoint-based; relative error is
  // bounded by the sub-bucket resolution (clamped to observed range).
  EXPECT_NEAR(h.value_at_percentile(50), 1000.0, 1000.0 * 0.05);
}

TEST(LogHistogram, PercentilesOfUniformSamples) {
  LogHistogram h(1.0, 1e7);
  Xoshiro256 rng(4);
  for (int i = 0; i < 100'000; ++i) {
    h.add(1.0 + rng.next_double() * 99'999.0);
  }
  EXPECT_NEAR(h.value_at_percentile(50), 50'000, 50'000 * 0.05);
  EXPECT_NEAR(h.value_at_percentile(99), 99'000, 99'000 * 0.05);
}

TEST(LogHistogram, RelativeErrorBounded) {
  LogHistogram h(1.0, 1e9, 64);
  for (double v : {5.0, 123.0, 4567.0, 1e6, 5e8}) {
    LogHistogram single(1.0, 1e9, 64);
    single.add(v);
    const double est = single.value_at_percentile(50);
    EXPECT_NEAR(est, v, v * 0.02) << "value " << v;
  }
  (void)h;
}

TEST(LogHistogram, ClampsOutOfRange) {
  LogHistogram h(10.0, 1000.0);
  h.add(1.0);      // below min -> clamped into first bucket
  h.add(1e9);      // above max -> clamped into last bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 1.0);   // raw min/max still tracked
  EXPECT_EQ(h.max(), 1e9);
}

TEST(LogHistogram, WeightedAdd) {
  LogHistogram h;
  h.add(100.0, 5);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 500.0);
}

TEST(LogHistogram, MergeCombines) {
  LogHistogram a, b;
  for (int i = 1; i <= 100; ++i) a.add(i);
  for (int i = 101; i <= 200; ++i) b.add(i);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 200.0);
  EXPECT_NEAR(a.value_at_percentile(50), 100.0, 10.0);
}

TEST(LogHistogram, ResetClears) {
  LogHistogram h;
  h.add(5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, MonotonePercentiles) {
  LogHistogram h;
  Xoshiro256 rng(9);
  for (int i = 0; i < 10'000; ++i) h.add(1.0 + rng.next_below(100'000));
  double prev = 0.0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double v = h.value_at_percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramSnapshot, MergeMatchesDirectAdds) {
  const HistogramParams params{1.0, 1e9, 32};
  HistogramSnapshot a(params), b(params), direct(params);
  Xoshiro256 rng(11);
  for (int i = 0; i < 20'000; ++i) {
    const double v = 1.0 + rng.next_double() * 1e6;
    (i % 2 ? a : b).add(v);
    direct.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), direct.count());
  EXPECT_EQ(a.buckets(), direct.buckets());
  // Summation order differs between the split and direct paths, so the
  // double totals agree only to rounding.
  EXPECT_NEAR(a.sum(), direct.sum(), direct.sum() * 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), direct.min());
  EXPECT_DOUBLE_EQ(a.max(), direct.max());
  for (double p : {50.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(a.value_at_percentile(p),
                     direct.value_at_percentile(p));
  }
}

TEST(HistogramSnapshot, MergeIntoEmptyAdoptsOther) {
  HistogramSnapshot empty, full;
  full.add(100.0);
  full.add(300.0);
  empty.merge(full);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.min(), 100.0);
  EXPECT_DOUBLE_EQ(empty.max(), 300.0);
}

TEST(HistogramSnapshot, P999CatchesTheTail) {
  // 10,000 samples at 1ms plus 20 outliers at ~1s: p99 stays at the
  // body, p99.9 must land in the tail.
  LogHistogram h(1.0, 1e12);
  for (int i = 0; i < 10'000; ++i) h.add(1e6);
  for (int i = 0; i < 20; ++i) h.add(1e9);
  EXPECT_NEAR(h.value_at_percentile(99), 1e6, 1e6 * 0.05);
  EXPECT_NEAR(h.value_at_percentile(99.9), 1e9, 1e9 * 0.05);
}

TEST(HistogramSnapshot, RawStateConstructorRoundTrips) {
  const HistogramParams params{1.0, 1e6, 16};
  HistogramSnapshot direct(params);
  direct.add(10.0, 2);
  direct.add(5000.0);
  HistogramSnapshot rebuilt(
      params, std::vector<std::uint64_t>(direct.buckets().begin(),
                                         direct.buckets().end()),
      direct.count(), direct.sum(), direct.min(), direct.max());
  EXPECT_EQ(rebuilt.count(), 3u);
  EXPECT_DOUBLE_EQ(rebuilt.sum(), 5020.0);
  EXPECT_DOUBLE_EQ(rebuilt.value_at_percentile(100),
                   direct.value_at_percentile(100));
}

}  // namespace
}  // namespace fastjoin
