#include "common/timeseries.hpp"

#include <gtest/gtest.h>

namespace fastjoin {
namespace {

TEST(TimeSeries, RecordAndAccess) {
  TimeSeries ts("x");
  EXPECT_TRUE(ts.empty());
  ts.record(10, 1.0);
  ts.record(20, 3.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.name(), "x");
  EXPECT_DOUBLE_EQ(ts.last(), 3.0);
}

TEST(TimeSeries, MeanAfterFiltersByTime) {
  TimeSeries ts;
  ts.record(0, 10.0);
  ts.record(100, 20.0);
  ts.record(200, 30.0);
  EXPECT_DOUBLE_EQ(ts.mean_after(0), 20.0);
  EXPECT_DOUBLE_EQ(ts.mean_after(100), 25.0);
  EXPECT_DOUBLE_EQ(ts.mean_after(201), 0.0);
}

TEST(TimeSeries, ResampleAveragesBuckets) {
  TimeSeries ts;
  ts.record(0, 2.0);
  ts.record(5, 4.0);
  ts.record(10, 6.0);
  const auto out = ts.resample(0, 10);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].v, 3.0);  // samples at t=0 and t=5
  EXPECT_DOUBLE_EQ(out[1].v, 6.0);
}

TEST(TimeSeries, ResampleCarriesForwardEmptyBuckets) {
  TimeSeries ts;
  ts.record(0, 5.0);
  ts.record(35, 9.0);
  const auto out = ts.resample(0, 10);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0].v, 5.0);
  EXPECT_DOUBLE_EQ(out[1].v, 5.0);  // carried forward
  EXPECT_DOUBLE_EQ(out[2].v, 5.0);
  EXPECT_DOUBLE_EQ(out[3].v, 9.0);
}

TEST(WindowedMean, MeanPerWindow) {
  WindowedMean wm("lat", kNanosPerSec);
  wm.add(0, 10.0);
  wm.add(kNanosPerSec / 2, 30.0);
  wm.add(kNanosPerSec + 1, 5.0);  // rolls the first window
  wm.finish();
  const auto pts = wm.series().points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].t, kNanosPerSec);
  EXPECT_DOUBLE_EQ(pts[0].v, 20.0);  // mean of 10 and 30
  EXPECT_DOUBLE_EQ(pts[1].v, 5.0);
  EXPECT_EQ(wm.total_samples(), 3u);
}

TEST(WindowedMean, ScaleDividesTheMean) {
  // ns samples in, ms means out — the MetricsHub latency config.
  WindowedMean wm("lat_ms", kNanosPerSec, /*scale=*/1e6);
  wm.add(0, 2e6);
  wm.add(1, 4e6);
  wm.finish();
  const auto pts = wm.series().points();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].v, 3.0);
}

TEST(WindowedMean, GapsEmitNoEmptyWindows) {
  WindowedMean wm("lat", kNanosPerSec);
  wm.add(0, 1.0);
  wm.add(3 * kNanosPerSec + 1, 9.0);  // two empty windows skipped
  wm.finish();
  const auto pts = wm.series().points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].v, 1.0);
  EXPECT_DOUBLE_EQ(pts[1].v, 9.0);
}

TEST(WindowedMean, StartAlignsToWindowBoundary) {
  WindowedMean wm("lat", 1000);
  wm.add(2'500, 7.0);  // first sample mid-window
  wm.finish();
  const auto pts = wm.series().points();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].t, 3'000);  // window [2000, 3000) closes at 3000
}

TEST(WindowedMean, FinishWithoutSamplesIsEmpty) {
  WindowedMean wm("lat");
  wm.finish();
  EXPECT_TRUE(wm.series().empty());
  EXPECT_EQ(wm.total_samples(), 0u);
}

TEST(RateTracker, CountsPerWindow) {
  RateTracker rt(kNanosPerSec);
  rt.add(0, 10);
  rt.add(kNanosPerSec / 2, 20);
  rt.add(kNanosPerSec + 1, 5);  // rolls the first window
  rt.finish();
  const auto pts = rt.series().points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].v, 30.0);  // 30 events in first second
  EXPECT_DOUBLE_EQ(pts[1].v, 5.0);
  EXPECT_EQ(rt.total(), 35u);
}

TEST(RateTracker, GapsEmitZeroWindows) {
  RateTracker rt(kNanosPerSec);
  rt.add(0, 1);
  rt.add(3 * kNanosPerSec + 1, 1);  // two empty windows in between
  rt.finish();
  const auto pts = rt.series().points();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_DOUBLE_EQ(pts[1].v, 0.0);
  EXPECT_DOUBLE_EQ(pts[2].v, 0.0);
}

TEST(RateTracker, SubSecondWindowScalesToPerSecond) {
  RateTracker rt(kNanosPerSec / 10);  // 100 ms windows
  rt.add(0, 10);
  rt.add(kNanosPerSec / 10 + 1, 0);
  rt.finish();
  const auto pts = rt.series().points();
  ASSERT_GE(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].v, 100.0);  // 10 events / 0.1 s = 100/s
}

}  // namespace
}  // namespace fastjoin
