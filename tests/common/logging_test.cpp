#include "common/logging.hpp"

#include <gtest/gtest.h>

namespace fastjoin {
namespace {

struct LevelGuard {
  LogLevel saved = logging::level();
  ~LevelGuard() { logging::set_level(saved); }
};

TEST(Logging, LevelRoundTrip) {
  LevelGuard guard;
  logging::set_level(LogLevel::kDebug);
  EXPECT_EQ(logging::level(), LogLevel::kDebug);
  logging::set_level(LogLevel::kError);
  EXPECT_EQ(logging::level(), LogLevel::kError);
}

TEST(Logging, FilteredStatementsDoNotEvaluateCheaply) {
  LevelGuard guard;
  logging::set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  // The macro's if-guard must skip the streaming expression entirely.
  FJ_DEBUG("test") << expensive();
  FJ_INFO("test") << expensive();
  FJ_ERROR("test") << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(Logging, EnabledStatementsEvaluate) {
  LevelGuard guard;
  logging::set_level(LogLevel::kError);
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return 1;
  };
  FJ_ERROR("test") << count();  // at threshold: evaluated
  FJ_WARN("test") << count();   // below: skipped
  EXPECT_EQ(evaluations, 1);
}

TEST(Logging, LevelsAreOrdered) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

}  // namespace
}  // namespace fastjoin
