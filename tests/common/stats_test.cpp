#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace fastjoin {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StreamingStats, BasicMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  StreamingStats all, a, b;
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, ExactSmallVector) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Imbalance, BalancedLoadsGiveLiOne) {
  std::vector<double> loads{100, 100, 100, 100};
  const auto m = compute_imbalance(loads);
  EXPECT_DOUBLE_EQ(m.li, 1.0);
  EXPECT_DOUBLE_EQ(m.peak, 1.0);
  EXPECT_DOUBLE_EQ(m.cv, 0.0);
}

TEST(Imbalance, MatchesPaperDefinition) {
  std::vector<double> loads{250, 100, 150, 100};
  const auto m = compute_imbalance(loads);
  EXPECT_DOUBLE_EQ(m.li, 2.5);  // Eq. 2: heaviest / lightest
  EXPECT_DOUBLE_EQ(m.max_load, 250.0);
  EXPECT_DOUBLE_EQ(m.min_load, 100.0);
}

TEST(Imbalance, ZeroLoadFloored) {
  std::vector<double> loads{500, 0};
  const auto m = compute_imbalance(loads, 1.0);
  EXPECT_DOUBLE_EQ(m.li, 500.0);  // floored denominator, finite ratio
}

TEST(Imbalance, EmptyInput) {
  const auto m = compute_imbalance({});
  EXPECT_DOUBLE_EQ(m.li, 1.0);
}

TEST(Gini, UniformIsZero) {
  std::vector<double> v{5, 5, 5, 5, 5};
  EXPECT_NEAR(gini(v), 0.0, 1e-12);
}

TEST(Gini, ExtremeConcentration) {
  std::vector<double> v(100, 0.0);
  v[0] = 1000.0;
  EXPECT_GT(gini(v), 0.95);
}

TEST(Gini, KnownValue) {
  // For {1, 3}: mean abs diff = 1, mean = 2 -> gini = 1/(2*2)... the
  // standard formula gives 0.25.
  std::vector<double> v{1, 3};
  EXPECT_NEAR(gini(v), 0.25, 1e-12);
}

}  // namespace
}  // namespace fastjoin
