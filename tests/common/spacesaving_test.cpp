#include "common/spacesaving.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "datagen/zipf.hpp"

namespace fastjoin {
namespace {

TEST(SpaceSaving, ExactBelowCapacity) {
  SpaceSaving ss(10);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j <= i; ++j) ss.add(static_cast<KeyId>(i));
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ss.estimate(static_cast<KeyId>(i)),
              static_cast<std::uint64_t>(i + 1));
    EXPECT_TRUE(ss.is_exact(static_cast<KeyId>(i)));
  }
  EXPECT_EQ(ss.min_count(), 0u);  // not full: no eviction floor yet
  EXPECT_EQ(ss.size(), 5u);
}

TEST(SpaceSaving, OverestimatesBoundedByMin) {
  SpaceSaving ss(4);
  Xoshiro256 rng(7);
  std::map<KeyId, std::uint64_t> truth;
  for (int i = 0; i < 20'000; ++i) {
    const KeyId k = rng.next_below(50);
    ss.add(k);
    ++truth[k];
  }
  // Classic guarantee: estimate in [truth, truth + error], and every
  // tracked key's error <= current min tracked count at eviction time
  // <= final estimates.
  for (const auto& e : ss.top()) {
    EXPECT_GE(e.count, truth[e.key]);
    EXPECT_LE(e.count - e.error, truth[e.key]);
  }
}

TEST(SpaceSaving, HeavyHittersAlwaysTracked) {
  // Any key with true count > N/m must be tracked.
  const std::size_t m = 32;
  SpaceSaving ss(m);
  ZipfDistribution zipf(10'000, 1.2);
  Xoshiro256 rng(3);
  std::map<KeyId, std::uint64_t> truth;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const KeyId k = zipf(rng);
    ss.add(k);
    ++truth[k];
  }
  for (const auto& [k, c] : truth) {
    if (c > static_cast<std::uint64_t>(n) / m) {
      EXPECT_GT(ss.estimate(k), 0u) << "heavy hitter " << k << " lost";
    }
  }
}

TEST(SpaceSaving, TopIsSortedDescending) {
  SpaceSaving ss(8);
  for (int i = 1; i <= 8; ++i) {
    ss.add(static_cast<KeyId>(i), static_cast<std::uint64_t>(i * 10));
  }
  const auto top = ss.top();
  ASSERT_EQ(top.size(), 8u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].count, top[i].count);
  }
  EXPECT_EQ(top.front().key, 8u);
}

TEST(SpaceSaving, WeightedAdds) {
  SpaceSaving ss(4);
  ss.add(1, 100);
  ss.add(2, 50);
  EXPECT_EQ(ss.estimate(1), 100u);
  EXPECT_EQ(ss.total_weight(), 150u);
}

TEST(SpaceSaving, EvictionInheritsFloor) {
  SpaceSaving ss(2);
  ss.add(1, 10);
  ss.add(2, 5);
  ss.add(3);  // evicts key 2 (min=5): estimate 6, error 5
  EXPECT_EQ(ss.estimate(2), 0u);
  EXPECT_EQ(ss.estimate(3), 6u);
  EXPECT_FALSE(ss.is_exact(3));
  EXPECT_EQ(ss.min_count(), 6u);
}

TEST(SpaceSaving, DecayHalvesAndPrunes) {
  SpaceSaving ss(8);
  ss.add(1, 8);
  ss.add(2, 1);
  ss.decay();
  EXPECT_EQ(ss.estimate(1), 4u);
  EXPECT_EQ(ss.estimate(2), 0u);  // 1/2 -> 0: pruned
  EXPECT_EQ(ss.size(), 1u);
  EXPECT_EQ(ss.total_weight(), 4u);
}

TEST(SpaceSaving, ClearResets) {
  SpaceSaving ss(4);
  ss.add(1, 3);
  ss.clear();
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_EQ(ss.total_weight(), 0u);
  EXPECT_EQ(ss.estimate(1), 0u);
}

TEST(SpaceSaving, CapacityAtLeastOne) {
  SpaceSaving ss(0);
  ss.add(1);
  ss.add(2);
  EXPECT_EQ(ss.capacity(), 1u);
  EXPECT_EQ(ss.size(), 1u);
}

}  // namespace
}  // namespace fastjoin
