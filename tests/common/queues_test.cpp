#include "common/queues.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

namespace fastjoin {
namespace {

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<int> q(8);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.size_approx(), 2u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscRing, FullRejectsPush) {
  SpscRing<int> q(2);  // rounded up; usable capacity >= 2
  std::size_t pushed = 0;
  while (q.try_push(static_cast<int>(pushed))) ++pushed;
  EXPECT_GE(pushed, 2u);
  EXPECT_FALSE(q.try_push(99));
  EXPECT_EQ(q.try_pop().value(), 0);
  EXPECT_TRUE(q.try_push(99));  // freed one slot
}

TEST(SpscRing, WrapsAround) {
  SpscRing<int> q(4);
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(q.try_push(round));
    ASSERT_EQ(q.try_pop().value(), round);
  }
  EXPECT_TRUE(q.empty_approx());
}

TEST(SpscRing, ConcurrentTransferPreservesSequence) {
  SpscRing<int> q(1024);
  const int n = 200'000;
  std::thread producer([&] {
    for (int i = 0; i < n; ++i) {
      while (!q.try_push(i)) std::this_thread::yield();
    }
  });
  long long sum = 0;
  int expected = 0;
  while (expected < n) {
    if (auto v = q.try_pop()) {
      ASSERT_EQ(*v, expected);  // FIFO, no loss, no duplication
      sum += *v;
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(n - 1) * n / 2);
}

TEST(SpscRing, BatchPushPopSingleThread) {
  SpscRing<int> q(8);
  int in[5] = {1, 2, 3, 4, 5};
  EXPECT_EQ(q.try_push_batch(in, 5), 5u);
  int out[8] = {};
  EXPECT_EQ(q.try_pop_batch(out, 3), 3u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[2], 3);
  EXPECT_EQ(q.try_pop_batch(out, 8), 2u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 5);
  EXPECT_EQ(q.try_pop_batch(out, 8), 0u);
}

TEST(SpscRing, BatchPushStopsAtCapacity) {
  SpscRing<int> q(4);  // rounds up to 8 slots, 7 usable
  std::vector<int> in(100);
  std::iota(in.begin(), in.end(), 0);
  const std::size_t pushed = q.try_push_batch(in.data(), in.size());
  EXPECT_EQ(pushed, q.capacity());
  EXPECT_FALSE(q.try_push(999));  // really full
  int out[100];
  EXPECT_EQ(q.try_pop_batch(out, 100), pushed);
  for (std::size_t i = 0; i < pushed; ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(SpscRing, BatchWrapsAroundPowerOfTwoBoundary) {
  SpscRing<int> q(8);  // 8 slots internally (mask 7)
  int out[8];
  int next_in = 0, next_out = 0;
  // Walk the indices across several wraparounds with mixed batch sizes
  // so batches straddle the power-of-two boundary in both directions.
  for (int round = 0; round < 200; ++round) {
    int in[3];
    for (int i = 0; i < 3; ++i) in[i] = next_in++;
    ASSERT_EQ(q.try_push_batch(in, 3), 3u);
    const std::size_t got = q.try_pop_batch(out, 3);
    ASSERT_EQ(got, 3u);
    for (std::size_t i = 0; i < got; ++i) {
      ASSERT_EQ(out[i], next_out++) << "round " << round;
    }
  }
  EXPECT_TRUE(q.empty_approx());
}

TEST(SpscRing, CloseRejectsPushDrainsPop) {
  SpscRing<int> q(8);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(3));
  int batch[2] = {4, 5};
  EXPECT_EQ(q.try_push_batch(batch, 2), 0u);
  EXPECT_EQ(q.try_pop().value(), 1);  // drains what was in flight
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscRing, ConcurrentBatchTransferPreservesSequence) {
  SpscRing<int> q(256);
  const int n = 200'000;
  std::thread producer([&] {
    int buf[33];
    int next = 0;
    while (next < n) {
      const int want = std::min(33, n - next);
      for (int i = 0; i < want; ++i) buf[i] = next + i;
      std::size_t done = 0;
      while (done < static_cast<std::size_t>(want)) {
        const std::size_t k =
            q.try_push_batch(buf + done, want - done);
        if (k == 0) std::this_thread::yield();
        done += k;
      }
      next += want;
    }
  });
  int out[57];
  int expected = 0;
  while (expected < n) {
    const std::size_t k = q.try_pop_batch(out, 57);
    if (k == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(out[i], expected);  // FIFO, no loss, no duplication
      ++expected;
    }
  }
  producer.join();
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscRing, ConcurrentCloseDrainsCleanly) {
  // Producer pushes until the ring is closed under it; the consumer
  // drains to closed-and-empty. Every value the producer reported as
  // pushed must come out exactly once — the poison convention the live
  // runtime relies on at finish().
  SpscRing<int> q(64);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    int v = 0;
    for (;;) {
      if (q.try_push(v)) {
        pushed.store(++v, std::memory_order_release);
      } else if (q.closed()) {
        return;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.close();
  producer.join();
  int expected = 0;
  while (auto v = q.try_pop()) {
    ASSERT_EQ(*v, expected);
    ++expected;
  }
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(expected, pushed.load(std::memory_order_acquire));
}

TEST(SpscRing, ManyLanesOneDrainerAtCapacityBoundary) {
  // The live-engine lane shape: each producer owns its own SPSC ring
  // (so the single-producer contract holds per lane) and ONE worker
  // thread drains all of them round-robin. Tiny capacity keeps every
  // lane bouncing off the full/empty boundary, which is where the
  // cached-index fast paths and the wraparound arithmetic earn (or
  // lose) their keep. Per-lane FIFO with no loss or duplication is the
  // invariant the worker's consumed-watermark dedup depends on.
  constexpr int kLanes = 5;
  constexpr int kPerLane = 60'000;
  constexpr std::size_t kCapacity = 4;  // rounds up to 8 slots, 7 usable
  std::vector<std::unique_ptr<SpscRing<std::uint64_t>>> lanes;
  for (int l = 0; l < kLanes; ++l) {
    lanes.push_back(std::make_unique<SpscRing<std::uint64_t>>(kCapacity));
  }

  std::vector<std::thread> producers;
  for (int l = 0; l < kLanes; ++l) {
    producers.emplace_back([&lanes, l] {
      auto& ring = *lanes[l];
      std::uint64_t buf[kCapacity + 3];  // deliberately > capacity
      std::uint64_t next = 0;
      while (next < kPerLane) {
        const std::size_t want = std::min<std::uint64_t>(
            kCapacity + 3, kPerLane - next);
        for (std::size_t i = 0; i < want; ++i) {
          // Lane id in the high bits so cross-lane leaks are detected.
          buf[i] = (static_cast<std::uint64_t>(l) << 32) | (next + i);
        }
        std::size_t done = 0;
        while (done < want) {
          const std::size_t k =
              ring.try_push_batch(buf + done, want - done);
          if (k == 0) std::this_thread::yield();
          done += k;
        }
        next += want;
      }
    });
  }

  // One drainer over all lanes, micro-batch pops like drain_lanes().
  std::vector<std::uint64_t> expected(kLanes, 0);
  std::uint64_t total = 0;
  std::uint64_t out[16];
  while (total < static_cast<std::uint64_t>(kLanes) * kPerLane) {
    bool progressed = false;
    for (int l = 0; l < kLanes; ++l) {
      const std::size_t k = lanes[l]->try_pop_batch(out, 16);
      for (std::size_t i = 0; i < k; ++i) {
        ASSERT_EQ(out[i] >> 32, static_cast<std::uint64_t>(l));
        ASSERT_EQ(out[i] & 0xffffffffu, expected[l]);
        ++expected[l];
      }
      total += k;
      progressed |= k > 0;
    }
    if (!progressed) std::this_thread::yield();
  }
  for (auto& p : producers) p.join();
  for (int l = 0; l < kLanes; ++l) {
    EXPECT_FALSE(lanes[l]->try_pop().has_value());
    EXPECT_EQ(expected[l], static_cast<std::uint64_t>(kPerLane));
  }
}

TEST(BoundedQueue, BasicPushPop) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));  // closed
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // drained + closed
}

TEST(BoundedQueue, BlockingPopWakesOnPush) {
  BoundedQueue<int> q(4);
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.push(42);
  });
  EXPECT_EQ(q.pop().value(), 42);
  t.join();
}

TEST(BoundedQueue, BackpressureBlocksUntilSpace) {
  BoundedQueue<int> q(1);
  q.push(1);
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(q.pop().value(), 1);
  });
  EXPECT_TRUE(q.push(2));  // blocks until the pop frees a slot
  t.join();
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, MpmcStress) {
  BoundedQueue<int> q(64);
  const int producers = 3;
  const int per_producer = 20'000;
  std::atomic<long long> sum{0};
  std::atomic<int> got{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i) {
        q.push(p * per_producer + i);
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (got.load() < producers * per_producer) {
        if (auto v = q.try_pop()) {
          sum += *v;
          ++got;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const long long n = static_cast<long long>(producers) * per_producer;
  EXPECT_EQ(sum.load(), (n - 1) * n / 2);
}

TEST(BoundedQueue, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  q.push(std::make_unique<int>(5));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(BoundedQueue, PopForReturnsItemImmediately) {
  BoundedQueue<int> q(4);
  q.push(7);
  const auto v = q.pop_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(BoundedQueue, PopForTimesOutOnEmptyOpenQueue) {
  BoundedQueue<int> q(4);
  const auto t0 = std::chrono::steady_clock::now();
  const auto v = q.pop_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(v.has_value());
  EXPECT_FALSE(q.closed());  // distinguishes timeout from shutdown
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(20));
}

TEST(BoundedQueue, PopForDrainsThenSignalsClosed) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(10)), 1);
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(10)), 2);
  const auto v = q.pop_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(v.has_value());
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueue, PopForWakesOnConcurrentPush) {
  BoundedQueue<int> q(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.push(42);
  });
  // Far longer than the push delay: the wait must wake early.
  const auto v = q.pop_for(std::chrono::seconds(10));
  producer.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(BoundedQueue, PopForWakesOnClose) {
  BoundedQueue<int> q(4);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
  });
  const auto v = q.pop_for(std::chrono::seconds(10));
  closer.join();
  EXPECT_FALSE(v.has_value());
  EXPECT_TRUE(q.closed());
}

}  // namespace
}  // namespace fastjoin
