#include "common/queues.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace fastjoin {
namespace {

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<int> q(8);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.size_approx(), 2u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscRing, FullRejectsPush) {
  SpscRing<int> q(2);  // rounded up; usable capacity >= 2
  std::size_t pushed = 0;
  while (q.try_push(static_cast<int>(pushed))) ++pushed;
  EXPECT_GE(pushed, 2u);
  EXPECT_FALSE(q.try_push(99));
  EXPECT_EQ(q.try_pop().value(), 0);
  EXPECT_TRUE(q.try_push(99));  // freed one slot
}

TEST(SpscRing, WrapsAround) {
  SpscRing<int> q(4);
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(q.try_push(round));
    ASSERT_EQ(q.try_pop().value(), round);
  }
  EXPECT_TRUE(q.empty_approx());
}

TEST(SpscRing, ConcurrentTransferPreservesSequence) {
  SpscRing<int> q(1024);
  const int n = 200'000;
  std::thread producer([&] {
    for (int i = 0; i < n; ++i) {
      while (!q.try_push(i)) std::this_thread::yield();
    }
  });
  long long sum = 0;
  int expected = 0;
  while (expected < n) {
    if (auto v = q.try_pop()) {
      ASSERT_EQ(*v, expected);  // FIFO, no loss, no duplication
      sum += *v;
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(n - 1) * n / 2);
}

TEST(BoundedQueue, BasicPushPop) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));  // closed
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // drained + closed
}

TEST(BoundedQueue, BlockingPopWakesOnPush) {
  BoundedQueue<int> q(4);
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.push(42);
  });
  EXPECT_EQ(q.pop().value(), 42);
  t.join();
}

TEST(BoundedQueue, BackpressureBlocksUntilSpace) {
  BoundedQueue<int> q(1);
  q.push(1);
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(q.pop().value(), 1);
  });
  EXPECT_TRUE(q.push(2));  // blocks until the pop frees a slot
  t.join();
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, MpmcStress) {
  BoundedQueue<int> q(64);
  const int producers = 3;
  const int per_producer = 20'000;
  std::atomic<long long> sum{0};
  std::atomic<int> got{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i) {
        q.push(p * per_producer + i);
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (got.load() < producers * per_producer) {
        if (auto v = q.try_pop()) {
          sum += *v;
          ++got;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const long long n = static_cast<long long>(producers) * per_producer;
  EXPECT_EQ(sum.load(), (n - 1) * n / 2);
}

TEST(BoundedQueue, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  q.push(std::make_unique<int>(5));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(BoundedQueue, PopForReturnsItemImmediately) {
  BoundedQueue<int> q(4);
  q.push(7);
  const auto v = q.pop_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(BoundedQueue, PopForTimesOutOnEmptyOpenQueue) {
  BoundedQueue<int> q(4);
  const auto t0 = std::chrono::steady_clock::now();
  const auto v = q.pop_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(v.has_value());
  EXPECT_FALSE(q.closed());  // distinguishes timeout from shutdown
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(20));
}

TEST(BoundedQueue, PopForDrainsThenSignalsClosed) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(10)), 1);
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(10)), 2);
  const auto v = q.pop_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(v.has_value());
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueue, PopForWakesOnConcurrentPush) {
  BoundedQueue<int> q(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.push(42);
  });
  // Far longer than the push delay: the wait must wake early.
  const auto v = q.pop_for(std::chrono::seconds(10));
  producer.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(BoundedQueue, PopForWakesOnClose) {
  BoundedQueue<int> q(4);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
  });
  const auto v = q.pop_for(std::chrono::seconds(10));
  closer.join();
  EXPECT_FALSE(v.has_value());
  EXPECT_TRUE(q.closed());
}

}  // namespace
}  // namespace fastjoin
