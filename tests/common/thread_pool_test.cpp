#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace fastjoin {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  auto f = pool.submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), n);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, TasksPropagateExceptionsViaFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    // Destructor must run all queued tasks' threads down safely.
  }
  // Note: queued-but-unstarted tasks may be dropped at destruction; the
  // contract is only that no thread leaks and no crash occurs.
  EXPECT_LE(counter.load(), 100);
}

}  // namespace
}  // namespace fastjoin
