#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace fastjoin {
namespace {

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Mix64, ZeroDoesNotMapToZero) {
  // SplitMix finalizer maps 0 -> 0; we rely on callers xoring a seed,
  // but the raw property should be documented by a test.
  EXPECT_EQ(mix64(0), 0u);
  EXPECT_NE(mix64(1), 0u);
}

TEST(Mix64, IsBijectiveOnSample) {
  std::set<std::uint64_t> images;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    images.insert(mix64(i));
  }
  EXPECT_EQ(images.size(), 10'000u);
}

TEST(Mix64, AvalanchesLowBits) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  const int trials = 256;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t a = mix64(i);
    const std::uint64_t b = mix64(i ^ 1);
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double mean_flips = static_cast<double>(total_flips) / trials;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(Fnv1a, MatchesKnownVectors) {
  // Official FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Murmur3, DeterministicAndSeedSensitive) {
  const std::string data = "fastjoin-murmur-test";
  EXPECT_EQ(murmur3_64(data), murmur3_64(data));
  EXPECT_NE(murmur3_64(data, 1), murmur3_64(data, 2));
}

TEST(Murmur3, HandlesAllTailLengths) {
  // Exercise every switch-case tail (len % 16 in 0..15).
  std::string data = "0123456789abcdefghijklmnopqrstuv";
  std::set<std::uint64_t> hashes;
  for (std::size_t len = 0; len <= 32; ++len) {
    hashes.insert(murmur3_64(data.data(), len));
  }
  EXPECT_EQ(hashes.size(), 33u);
}

TEST(ReduceRange, StaysInRange) {
  for (std::uint32_t n : {1u, 2u, 7u, 48u, 1000u}) {
    for (std::uint64_t h : {0ULL, 1ULL, ~0ULL, 0x8000000000000000ULL}) {
      EXPECT_LT(reduce_range(h, n), n);
    }
  }
}

TEST(InstanceOf, IsRoughlyUniform) {
  const std::uint32_t n = 48;
  std::vector<int> counts(n, 0);
  const int total = 480'000;
  for (int i = 0; i < total; ++i) {
    ++counts[instance_of(static_cast<std::uint64_t>(i), n)];
  }
  const double expected = static_cast<double>(total) / n;
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], expected, expected * 0.05) << "bucket " << i;
  }
}

TEST(InstanceOf, SeedChangesMapping) {
  int moved = 0;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    if (instance_of(k, 16, 0) != instance_of(k, 16, 12345)) ++moved;
  }
  // With 16 buckets ~93.75% of keys should move under a new seed.
  EXPECT_GT(moved, 800);
}

}  // namespace
}  // namespace fastjoin
