// Wire stability: committed hex dumps of every message type. A failure
// here means the byte layout changed — that is a protocol break, not a
// refactor. Bump the frame magic / add a version field before changing
// any golden constant, or old workers and clients will mis-decode.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/wire.hpp"
#include "server/protocol.hpp"

namespace fastjoin::net {
namespace {

std::string to_hex(const std::vector<std::byte>& v) {
  static const char* d = "0123456789abcdef";
  std::string s;
  s.reserve(v.size() * 2);
  for (std::byte b : v) {
    const auto u = static_cast<unsigned>(b);
    s += d[u >> 4];
    s += d[u & 0xF];
  }
  return s;
}

std::vector<std::byte> from_hex(const std::string& s) {
  std::vector<std::byte> v;
  v.reserve(s.size() / 2);
  for (std::size_t i = 0; i + 1 < s.size(); i += 2) {
    const auto hi = std::stoul(s.substr(i, 2), nullptr, 16);
    v.push_back(static_cast<std::byte>(hi));
  }
  return v;
}

// Asserts encode(msg) matches the committed bytes AND the committed
// bytes decode back to something that re-encodes identically — so both
// directions of the codec are pinned.
template <typename M>
void expect_golden(const M& msg, const std::string& golden) {
  const auto enc = encode(msg);
  EXPECT_EQ(to_hex(enc), golden)
      << "encode() layout changed: protocol break";
  M back;
  ASSERT_TRUE(decode(from_hex(golden), back))
      << "committed golden bytes no longer decode";
  EXPECT_EQ(to_hex(encode(back)), golden)
      << "decode() no longer inverts the committed bytes";
}

Record sample_record(std::uint64_t i) {
  Record r;
  r.key = 100 + i;
  r.seq = i;
  r.payload = i * 31;
  r.ts = static_cast<SimTime>(i * 7);
  r.side = (i & 1) ? Side::kS : Side::kR;
  return r;
}

WireTuple sample_tuple(std::uint64_t i) {
  WireTuple t;
  t.side = (i & 1) ? Side::kS : Side::kR;
  t.key = 7'000 + i;
  t.tuple = StoredTuple{i, i * 13, static_cast<SimTime>(i), 2};
  return t;
}

TEST(GoldenWire, Hello) {
  HelloMsg m;
  m.worker_id = 3;
  m.pid = 4242;
  expect_golden(m, "030000009210000000000000");
}

TEST(GoldenWire, HelloAck) {
  HelloAckMsg m;
  m.worker_id = 1;
  m.workers = 8;
  m.collect_matches = 1;
  expect_golden(m, "010000000800000001");
}

TEST(GoldenWire, DataBatch) {
  DataBatchMsg m;
  m.entries.push_back(DataEntry{10, kDeliverStore, sample_record(0)});
  m.entries.push_back(DataEntry{
      11,
      static_cast<std::uint8_t>(kDeliverStore | kDeliverProbe |
                                kSuppressEmit),
      sample_record(1)});
  expect_golden(
      m,
      "020000000a000000000000000164000000000000000000000000000000"
      "00000000000000000000000000000000000b0000000000000007650000"
      "000000000001000000000000001f000000000000000700000000000000"
      "01");
}

TEST(GoldenWire, Extract) {
  ExtractMsg m;
  m.mig_id = 17;
  m.side = Side::kS;
  m.keys = {1, 2, 99};
  expect_golden(m,
                "110000000000000001030000000100000000000000"
                "02000000000000006300000000000000");
}

TEST(GoldenWire, ExtractBatch) {
  ExtractBatchMsg m;
  m.mig_id = 5;
  m.consumed_offset = 777;
  m.tuples = {sample_tuple(0), sample_tuple(1)};
  expect_golden(
      m,
      "050000000000000009030000000000000200000000581b000000000000"
      "000000000000000000000000000000000000000000000000020000000159"
      "1b00000000000001000000000000000d0000000000000001000000000000"
      "0002000000");
}

TEST(GoldenWire, Absorb) {
  AbsorbMsg m;
  m.mig_id = 0;
  m.tuples = {sample_tuple(1)};
  expect_golden(m,
                "00000000000000000100000001591b0000000000000100000000"
                "0000000d00000000000000010000000000000002000000");
}

TEST(GoldenWire, AbsorbAck) {
  AbsorbAckMsg m;
  m.mig_id = 9;
  expect_golden(m, "0900000000000000");
}

TEST(GoldenWire, Checkpoint) {
  CheckpointMsg m;
  m.ckpt_id = 12;
  expect_golden(m, "0c00000000000000");
}

TEST(GoldenWire, Snapshot) {
  SnapshotMsg m;
  m.ckpt_id = 12;
  m.consumed_offset = 100;
  m.emit_offset = 100;
  m.tuples = {sample_tuple(2)};
  expect_golden(m,
                "0c0000000000000064000000000000006400000000000000"
                "01000000005a1b00000000000002000000000000001a000000000000"
                "00020000000000000002000000");
}

TEST(GoldenWire, MatchBatch) {
  MatchBatchMsg m;
  m.emit_offset = 55;
  m.count = 2;
  m.pairs = {MatchPair{1, 2, 3}, MatchPair{4, 5, 6}};
  expect_golden(m,
                "370000000000000002000000000000000200000001000000000000"
                "0002000000000000000300000000000000040000000000000005000000"
                "000000000600000000000000");
}

TEST(GoldenWire, Final) {
  FinalMsg m;
  m.stores = 1;
  m.probes = 2;
  m.matches = 3;
  m.suppressed = 4;
  m.dedup_skipped = 5;
  m.absorbed = 6;
  expect_golden(m,
                "010000000000000002000000000000000300000000000000"
                "040000000000000005000000000000000600000000000000");
}

TEST(GoldenWire, ClientHello) {
  server::ClientHelloMsg m;
  m.tenant = "tenant-a";
  m.proto_version = 1;
  expect_golden(m, "0800000074656e616e742d6101000000");
}

TEST(GoldenWire, ClientHelloAck) {
  server::ClientHelloAckMsg m;
  m.ok = 1;
  m.reason = 0;
  m.max_batch_records = 512;
  m.rate_bytes_per_sec = 1 << 20;
  m.burst_bytes = 1 << 16;
  expect_golden(m, "01000002000000001000000000000000010000000000");
}

TEST(GoldenWire, Append) {
  server::AppendMsg m;
  m.req_id = 42;
  server::ClientRecord a;
  a.side = Side::kR;
  a.key = 100;
  a.payload = 0;
  server::ClientRecord b;
  b.side = Side::kS;
  b.key = 101;
  b.payload = 7;
  m.records = {a, b};
  expect_golden(m,
                "2a00000000000000020000000064000000000000000000000000"
                "0000000165000000000000000700000000000000");
}

TEST(GoldenWire, AppendAck) {
  server::AppendAckMsg m;
  m.req_id = 7;
  m.first_offset = 100;
  m.appended = 3;
  m.parked = 1;
  expect_golden(m,
                "07000000000000006400000000000000"
                "03000000000000000100000000000000");
}

TEST(GoldenWire, Rejected) {
  server::RejectedMsg m;
  m.req_id = 7;
  m.reason = 1;
  m.retry_after_ms = 250;
  expect_golden(m, "070000000000000001fa000000");
}

TEST(GoldenWire, Query) {
  server::QueryMsg m;
  m.req_id = 9;
  m.key = 1234;
  m.max_recent = 16;
  expect_golden(m, "0900000000000000d20400000000000010000000");
}

TEST(GoldenWire, QueryResult) {
  server::QueryResultMsg m;
  m.req_id = 9;
  m.key = 1234;
  m.r_tuples = 10;
  m.s_tuples = 20;
  m.owner_r = 1;
  m.owner_s = 2;
  m.as_of_ckpt = 5;
  m.matches_total = 200;
  m.recent = {MatchPair{1, 2, 3}, MatchPair{4, 5, 6}};
  expect_golden(m,
                "0900000000000000d2040000000000000a00000000000000140000"
                "000000000001000000020000000500000000000000c8000000000000"
                "0002000000010000000000000002000000000000000300000000000000"
                "040000000000000005000000000000000600000000000000");
}

// The full framed form: magic, type, flags, length, CRC32C, payload.
// Pins the frame header layout and the CRC polynomial/seed together.
TEST(GoldenWire, FramedHello) {
  HelloMsg m;
  m.worker_id = 3;
  m.pid = 4242;
  const auto framed =
      encode_frame(static_cast<std::uint16_t>(MsgType::kHello),
                   encode(m));
  EXPECT_EQ(to_hex(framed),
            "314e4a46010000000c0000003556a6c6030000009210000000000000");

  FrameDecoder dec;
  std::vector<Frame> out;
  ASSERT_TRUE(dec.feed(framed.data(), framed.size(), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, static_cast<std::uint16_t>(MsgType::kHello));
  HelloMsg back;
  ASSERT_TRUE(decode(out[0].payload, back));
  EXPECT_EQ(back.pid, 4242u);
}

}  // namespace
}  // namespace fastjoin::net
