// Socket layer + connection classes over real loopback sockets:
// endpoint parsing, blocking echo, EINTR storms, nonblocking
// event-loop echo under random fragmentation, and the close
// discipline (clean EOF vs torn frame).
#include "net/socket.hpp"

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"

namespace fastjoin::net {
namespace {

std::string temp_sock_path(const char* tag) {
  return "/tmp/fastjoin-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

TEST(Endpoint, ParseAndRender) {
  Endpoint ep;
  ASSERT_TRUE(Endpoint::parse("unix:/tmp/x.sock", ep));
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/tmp/x.sock");
  EXPECT_EQ(ep.to_string(), "unix:/tmp/x.sock");

  ASSERT_TRUE(Endpoint::parse("tcp:8080", ep));
  EXPECT_EQ(ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep.port, 8080);
  EXPECT_EQ(ep.to_string(), "tcp:8080");

  EXPECT_FALSE(Endpoint::parse("", ep));
  EXPECT_FALSE(Endpoint::parse("unix:", ep));
  EXPECT_FALSE(Endpoint::parse("tcp:", ep));
  EXPECT_FALSE(Endpoint::parse("tcp:notaport", ep));
  EXPECT_FALSE(Endpoint::parse("tcp:99999", ep));
  EXPECT_FALSE(Endpoint::parse("http:80", ep));
}

TEST(Socket, UnixBlockingEchoRoundtrip) {
  Endpoint ep;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = temp_sock_path("echo");
  std::string err;
  Socket listener = listen_endpoint(ep, 4, &err);
  ASSERT_TRUE(listener.valid()) << err;

  std::thread server([&] {
    std::string serr;
    Socket peer;
    // The listener is nonblocking; poll-accept until the client shows.
    for (int i = 0; i < 5000 && !peer.valid(); ++i) {
      peer = accept_conn(listener, &serr);
      if (!peer.valid()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(peer.valid()) << serr;
    FrameConn fc(std::move(peer));
    Frame f;
    while (fc.read_frame(f)) {
      ASSERT_TRUE(fc.write_frame(f.type, f.payload));
      if (f.type == 99) break;
    }
  });

  FrameConn client = FrameConn::connect(
      ep, std::chrono::milliseconds(5000), &err);
  ASSERT_TRUE(client.valid()) << err;
  for (std::uint16_t t = 1; t <= 99; ++t) {
    std::vector<std::byte> p(t * 3);
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] = static_cast<std::byte>(i ^ t);
    }
    ASSERT_TRUE(client.write_frame(t, p));
    Frame back;
    ASSERT_TRUE(client.read_frame(back));
    EXPECT_EQ(back.type, t);
    EXPECT_EQ(back.payload, p);
  }
  server.join();
  ::unlink(ep.path.c_str());
}

TEST(Socket, TcpPortZeroPicksAndConnects) {
  Endpoint ep;
  ep.kind = Endpoint::Kind::kTcp;
  ep.port = 0;
  std::string err;
  Socket listener = listen_endpoint(ep, 4, &err);
  ASSERT_TRUE(listener.valid()) << err;
  ASSERT_NE(ep.port, 0) << "kernel-chosen port must be written back";

  std::thread server([&] {
    std::string serr;
    Socket peer;
    for (int i = 0; i < 5000 && !peer.valid(); ++i) {
      peer = accept_conn(listener, &serr);
      if (!peer.valid()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(peer.valid()) << serr;
    FrameConn fc(std::move(peer));
    Frame f;
    ASSERT_TRUE(fc.read_frame(f));
    ASSERT_TRUE(fc.write_frame(f.type, f.payload));
  });

  FrameConn client = FrameConn::connect(
      ep, std::chrono::milliseconds(5000), &err);
  ASSERT_TRUE(client.valid()) << err;
  const std::vector<std::byte> p(1000, std::byte{0x5A});
  ASSERT_TRUE(client.write_frame(42, p));
  Frame back;
  ASSERT_TRUE(client.read_frame(back));
  EXPECT_EQ(back.payload, p);
  server.join();
}

TEST(Socket, ConnectRetriesUntilListenerAppears) {
  Endpoint ep;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = temp_sock_path("late");
  ::unlink(ep.path.c_str());

  Socket listener;
  std::thread late_binder([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    std::string berr;
    listener = listen_endpoint(ep, 4, &berr);
    ASSERT_TRUE(listener.valid()) << berr;
  });
  std::string err;
  // Starts connecting before the listener exists — the worker-respawn
  // race — and must succeed via backoff.
  Socket c = connect_with_retry(ep, std::chrono::milliseconds(5000), &err);
  EXPECT_TRUE(c.valid()) << err;
  late_binder.join();
  ::unlink(ep.path.c_str());
}

// ---------------------------------------------------------------------------
// EINTR storm: a signal handler installed WITHOUT SA_RESTART makes
// every blocking syscall eligible to fail with EINTR; the io helpers
// must retry transparently.
// ---------------------------------------------------------------------------

void noop_handler(int) {}

TEST(Socket, EintrStormSurvived) {
  struct sigaction sa = {};
  struct sigaction old = {};
  sa.sa_handler = noop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  Endpoint ep;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = temp_sock_path("eintr");
  std::string err;
  Socket listener = listen_endpoint(ep, 4, &err);
  ASSERT_TRUE(listener.valid()) << err;

  std::atomic<bool> done{false};
  pthread_t victim = pthread_self();

  std::thread pinger([&] {
    while (!done.load(std::memory_order_relaxed)) {
      pthread_kill(victim, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::thread server([&] {
    std::string serr;
    Socket peer;
    for (int i = 0; i < 5000 && !peer.valid(); ++i) {
      peer = accept_conn(listener, &serr);
      if (!peer.valid()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(peer.valid()) << serr;
    FrameConn fc(std::move(peer));
    Frame f;
    while (fc.read_frame(f)) {
      ASSERT_TRUE(fc.write_frame(f.type, f.payload));
      if (f.type == 0xFFF) break;
    }
  });

  FrameConn client = FrameConn::connect(
      ep, std::chrono::milliseconds(5000), &err);
  ASSERT_TRUE(client.valid()) << err;
  Xoshiro256 rng(0xE1);
  // Large frames force multi-chunk reads/writes, maximizing the EINTR
  // surface on this (signal-bombed) thread.
  for (int i = 0; i < 60; ++i) {
    const bool last = i == 59;
    std::vector<std::byte> p(64 * 1024 + rng.next_below(128 * 1024));
    for (auto& b : p) b = static_cast<std::byte>(rng.next_below(256));
    ASSERT_TRUE(client.write_frame(last ? 0xFFF : 7, p))
        << client.error();
    Frame back;
    ASSERT_TRUE(client.read_frame(back)) << client.error();
    ASSERT_EQ(back.payload.size(), p.size());
    EXPECT_EQ(back.payload, p);
  }
  done.store(true);
  pinger.join();
  server.join();
  sigaction(SIGUSR1, &old, nullptr);
  ::unlink(ep.path.c_str());
}

// ---------------------------------------------------------------------------
// Nonblocking Connection echo server (the router's stack) driven by a
// blocking client under random frame sizes.
// ---------------------------------------------------------------------------

TEST(Connection, EventLoopEchoSoak) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  Endpoint ep;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = temp_sock_path("loopecho");
  std::vector<std::unique_ptr<Connection>> conns;
  bool server_saw_clean_close = false;
  Acceptor acceptor(loop, ep, [&](Socket peer) {
    auto conn = std::make_unique<Connection>(loop, std::move(peer),
                                             Connection::Options{});
    Connection* raw = conn.get();
    conns.push_back(std::move(conn));
    raw->start([raw](Frame& f) { raw->send(f.type, f.payload); },
               [&server_saw_clean_close](const std::string&, bool clean) {
                 server_saw_clean_close = clean;
               });
  });
  ASSERT_TRUE(acceptor.ok()) << acceptor.error();

  constexpr int kFrames = 500;
  std::atomic<bool> client_ok{true};
  std::thread client([&] {
    std::string err;
    FrameConn fc = FrameConn::connect(ep, std::chrono::milliseconds(5000),
                                      &err);
    if (!fc.valid()) {
      client_ok = false;
      return;
    }
    Xoshiro256 rng(0xC0FFEE);
    for (int i = 0; i < kFrames; ++i) {
      std::vector<std::byte> p(rng.next_below(4096));
      for (auto& b : p) b = static_cast<std::byte>(rng.next_below(256));
      if (!fc.write_frame(static_cast<std::uint16_t>(i % 9), p)) {
        client_ok = false;
        return;
      }
      Frame back;
      if (!fc.read_frame(back) || back.payload != p) {
        client_ok = false;
        return;
      }
    }
    // Close at a frame boundary: the server must see clean == true.
  });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!server_saw_clean_close &&
         std::chrono::steady_clock::now() < deadline) {
    loop.run_once(std::chrono::milliseconds(5));
  }
  client.join();
  EXPECT_TRUE(client_ok.load());
  EXPECT_TRUE(server_saw_clean_close);
  ::unlink(ep.path.c_str());
}

TEST(Connection, TornFrameCloseIsNotClean) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  Endpoint ep;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = temp_sock_path("torn");
  std::vector<std::unique_ptr<Connection>> conns;
  std::atomic<int> closes{0};
  bool close_was_clean = true;
  Acceptor acceptor(loop, ep, [&](Socket peer) {
    auto conn = std::make_unique<Connection>(loop, std::move(peer),
                                             Connection::Options{});
    Connection* raw = conn.get();
    conns.push_back(std::move(conn));
    raw->start([](Frame&) {},
               [&](const std::string&, bool clean) {
                 close_was_clean = clean;
                 closes.fetch_add(1);
               });
  });
  ASSERT_TRUE(acceptor.ok()) << acceptor.error();

  std::thread client([&] {
    std::string err;
    Socket s = connect_with_retry(ep, std::chrono::milliseconds(5000), &err);
    ASSERT_TRUE(s.valid()) << err;
    const auto buf = encode_frame(1, std::vector<std::byte>(100));
    // Half a frame, then vanish — the SIGKILL-mid-write shape.
    ASSERT_TRUE(send_all(s, buf.data(), buf.size() / 2));
  });
  client.join();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (closes.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    loop.run_once(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(closes.load(), 1);
  EXPECT_FALSE(close_was_clean);
  ::unlink(ep.path.c_str());
}

}  // namespace
}  // namespace fastjoin::net
