// Frame codec edge cases: the decoder must survive arbitrary
// fragmentation, reject every corruption class, and stay broken once
// framing is lost.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "net/crc32.hpp"

namespace fastjoin::net {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

TEST(Frame, RoundtripSingle) {
  const auto payload = bytes_of("hello frame");
  const auto buf = encode_frame(7, payload);
  ASSERT_EQ(buf.size(), kFrameHeaderBytes + payload.size());

  FrameDecoder dec;
  std::vector<Frame> out;
  ASSERT_TRUE(dec.feed(buf.data(), buf.size(), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, 7);
  EXPECT_EQ(out[0].payload, payload);
  EXPECT_FALSE(dec.mid_frame());
  EXPECT_EQ(dec.frames_decoded(), 1u);
}

TEST(Frame, EmptyPayload) {
  const auto buf = encode_frame(3, nullptr, 0);
  FrameDecoder dec;
  std::vector<Frame> out;
  ASSERT_TRUE(dec.feed(buf.data(), buf.size(), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, 3);
  EXPECT_TRUE(out[0].payload.empty());
}

TEST(Frame, ByteAtATimeFeed) {
  const auto payload = bytes_of("drip drip drip");
  const auto buf = encode_frame(9, payload);
  FrameDecoder dec;
  std::vector<Frame> out;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    ASSERT_TRUE(dec.feed(buf.data() + i, 1, out));
    if (i + 1 < buf.size()) {
      EXPECT_TRUE(out.empty());
      EXPECT_TRUE(dec.mid_frame());
    }
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, payload);
  EXPECT_FALSE(dec.mid_frame());
}

TEST(Frame, ManyFramesOneFeed) {
  std::vector<std::byte> stream;
  for (int i = 0; i < 50; ++i) {
    const auto p = bytes_of(std::string(static_cast<std::size_t>(i), 'x'));
    const auto f = encode_frame(static_cast<std::uint16_t>(i), p);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameDecoder dec;
  std::vector<Frame> out;
  ASSERT_TRUE(dec.feed(stream.data(), stream.size(), out));
  ASSERT_EQ(out.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].type, i);
    EXPECT_EQ(out[static_cast<std::size_t>(i)].payload.size(),
              static_cast<std::size_t>(i));
  }
}

TEST(Frame, RandomFragmentationSoak) {
  // The full stress: many random-size frames, fed in random-size
  // chunks. Every frame must come out intact and in order.
  Xoshiro256 rng(0xfeedface);
  std::vector<std::vector<std::byte>> payloads;
  std::vector<std::byte> stream;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::byte> p(rng.next_below(512));
    for (auto& b : p) b = static_cast<std::byte>(rng.next_below(256));
    const auto f = encode_frame(static_cast<std::uint16_t>(i % 13), p);
    stream.insert(stream.end(), f.begin(), f.end());
    payloads.push_back(std::move(p));
  }
  FrameDecoder dec;
  std::vector<Frame> out;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.next_below(97), stream.size() - pos);
    ASSERT_TRUE(dec.feed(stream.data() + pos, n, out));
    pos += n;
  }
  ASSERT_EQ(out.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(out[i].payload, payloads[i]) << "frame " << i;
  }
  EXPECT_FALSE(dec.mid_frame());
}

TEST(Frame, TornFrameAtEof) {
  const auto buf = encode_frame(5, bytes_of("truncated in flight"));
  FrameDecoder dec;
  std::vector<Frame> out;
  // Everything but the last byte: no frame, mid_frame — the torn tail
  // is discarded, never delivered (the SIGKILL-mid-write case).
  ASSERT_TRUE(dec.feed(buf.data(), buf.size() - 1, out));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(dec.mid_frame());
  EXPECT_FALSE(dec.broken());
}

TEST(Frame, BadMagicIsSticky) {
  auto buf = encode_frame(1, bytes_of("x"));
  buf[0] = static_cast<std::byte>(0x00);
  FrameDecoder dec;
  std::vector<Frame> out;
  EXPECT_FALSE(dec.feed(buf.data(), buf.size(), out));
  EXPECT_TRUE(dec.broken());
  EXPECT_NE(dec.error().find("magic"), std::string::npos);
  // Sticky: even a valid frame is refused now.
  const auto good = encode_frame(1, bytes_of("y"));
  EXPECT_FALSE(dec.feed(good.data(), good.size(), out));
  EXPECT_TRUE(out.empty());
}

TEST(Frame, NonzeroFlagsRejected) {
  auto buf = encode_frame(1, bytes_of("x"));
  buf[6] = static_cast<std::byte>(0xff);  // flags u16 at offset 6
  FrameDecoder dec;
  std::vector<Frame> out;
  EXPECT_FALSE(dec.feed(buf.data(), buf.size(), out));
  EXPECT_TRUE(dec.broken());
}

TEST(Frame, CrcMismatchRejected) {
  auto buf = encode_frame(1, bytes_of("checksummed"));
  buf[kFrameHeaderBytes + 2] ^= static_cast<std::byte>(0x01);
  FrameDecoder dec;
  std::vector<Frame> out;
  EXPECT_FALSE(dec.feed(buf.data(), buf.size(), out));
  EXPECT_TRUE(dec.broken());
  EXPECT_NE(dec.error().find("CRC"), std::string::npos);
}

TEST(Frame, CorruptedCrcFieldRejected) {
  auto buf = encode_frame(1, bytes_of("checksummed"));
  buf[12] ^= static_cast<std::byte>(0x80);  // crc u32 at offset 12
  FrameDecoder dec;
  std::vector<Frame> out;
  EXPECT_FALSE(dec.feed(buf.data(), buf.size(), out));
  EXPECT_TRUE(dec.broken());
}

TEST(Frame, OversizedLengthRejected) {
  // A decoder with a small ceiling refuses the header before buffering
  // the body — corrupt lengths cannot drive giant allocations.
  const std::vector<std::byte> payload(128);
  const auto buf = encode_frame(1, payload);
  FrameDecoder dec(/*max_payload=*/64);
  std::vector<Frame> out;
  EXPECT_FALSE(dec.feed(buf.data(), kFrameHeaderBytes, out));
  EXPECT_TRUE(dec.broken());
  EXPECT_NE(dec.error().find("oversized"), std::string::npos);
}

TEST(Frame, HeaderSplitAcrossFeeds) {
  const auto payload = bytes_of("split header");
  const auto buf = encode_frame(11, payload);
  FrameDecoder dec;
  std::vector<Frame> out;
  ASSERT_TRUE(dec.feed(buf.data(), 7, out));  // half the header
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(dec.feed(buf.data() + 7, buf.size() - 7, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, payload);
}

TEST(Crc32c, KnownVectorsAndIncremental) {
  // RFC 3720 test vector: 32 zero bytes.
  std::uint8_t zeros[32] = {0};
  EXPECT_EQ(crc32c(zeros, sizeof zeros), 0x8A9136AAu);
  const char* s = "123456789";
  const std::uint32_t whole = crc32c(s, 9);
  EXPECT_EQ(whole, 0xE3069283u);
  // Length zero is a no-op on the seed.
  EXPECT_EQ(crc32c(nullptr, 0), crc32c("", 0));
}

}  // namespace
}  // namespace fastjoin::net
