// Wire message codecs: every type roundtrips; every malformed payload
// (truncated, trailing garbage, bad enum, lying count) is rejected.
#include "net/wire.hpp"

#include <gtest/gtest.h>

namespace fastjoin::net {
namespace {

Record sample_record(std::uint64_t i) {
  Record r;
  r.key = 100 + i;
  r.seq = i;
  r.payload = i * 31;
  r.ts = static_cast<SimTime>(i * 7);
  r.side = (i & 1) ? Side::kS : Side::kR;
  return r;
}

WireTuple sample_tuple(std::uint64_t i) {
  WireTuple t;
  t.side = (i & 1) ? Side::kS : Side::kR;
  t.key = 7'000 + i;
  t.tuple = StoredTuple{i, i * 13, static_cast<SimTime>(i), 2};
  return t;
}

template <typename M>
void expect_rejects_mutations(const M& msg) {
  // Truncation at every prefix length must fail, as must one byte of
  // trailing garbage. (done() + bounds-checked reads.)
  const auto full = encode(msg);
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::byte> cut(full.begin(),
                               full.begin() + static_cast<long>(len));
    M out;
    EXPECT_FALSE(decode(cut, out)) << "accepted truncation at " << len;
  }
  auto extended = full;
  extended.push_back(std::byte{0xEE});
  M out;
  EXPECT_FALSE(decode(extended, out)) << "accepted trailing garbage";
}

TEST(Wire, HelloRoundtrip) {
  HelloMsg m;
  m.worker_id = 3;
  m.pid = 4242;
  HelloMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  EXPECT_EQ(d.worker_id, 3u);
  EXPECT_EQ(d.pid, 4242u);
  expect_rejects_mutations(m);
}

TEST(Wire, HelloAckRoundtrip) {
  HelloAckMsg m;
  m.worker_id = 1;
  m.workers = 8;
  m.collect_matches = 1;
  HelloAckMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  EXPECT_EQ(d.workers, 8u);
  EXPECT_EQ(d.collect_matches, 1);
  expect_rejects_mutations(m);
}

TEST(Wire, DataBatchRoundtrip) {
  DataBatchMsg m;
  for (std::uint64_t i = 0; i < 5; ++i) {
    std::uint8_t flags = kDeliverStore;
    if (i % 2) flags |= kDeliverProbe | kSuppressEmit;
    if (i % 3 == 0) flags |= kDedupStore;
    m.entries.push_back(DataEntry{i * 10, flags, sample_record(i)});
  }
  DataBatchMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  ASSERT_EQ(d.entries.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(d.entries[i].offset, i * 10);
    EXPECT_EQ(d.entries[i].flags, m.entries[i].flags);
    EXPECT_EQ(d.entries[i].rec.key, m.entries[i].rec.key);
    EXPECT_EQ(d.entries[i].rec.seq, m.entries[i].rec.seq);
    EXPECT_EQ(d.entries[i].rec.ts, m.entries[i].rec.ts);
    EXPECT_EQ(d.entries[i].rec.side, m.entries[i].rec.side);
  }
  expect_rejects_mutations(m);
}

TEST(Wire, DataEntryWithoutDeliverBitsRejected) {
  DataBatchMsg m;
  m.entries.push_back(DataEntry{0, 0, sample_record(1)});
  DataBatchMsg d;
  EXPECT_FALSE(decode(encode(m), d));
}

TEST(Wire, ExtractRoundtrip) {
  ExtractMsg m;
  m.mig_id = 17;
  m.side = Side::kS;
  m.keys = {1, 2, 99};
  ExtractMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  EXPECT_EQ(d.mig_id, 17u);
  EXPECT_EQ(d.side, Side::kS);
  EXPECT_EQ(d.keys, m.keys);
  expect_rejects_mutations(m);
}

TEST(Wire, ExtractBatchRoundtrip) {
  ExtractBatchMsg m;
  m.mig_id = 5;
  m.consumed_offset = 777;
  for (std::uint64_t i = 0; i < 4; ++i) m.tuples.push_back(sample_tuple(i));
  ExtractBatchMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  EXPECT_EQ(d.consumed_offset, 777u);
  ASSERT_EQ(d.tuples.size(), 4u);
  EXPECT_EQ(d.tuples[3].key, m.tuples[3].key);
  EXPECT_EQ(d.tuples[3].tuple.seq, m.tuples[3].tuple.seq);
  EXPECT_EQ(d.tuples[3].tuple.subwindow, m.tuples[3].tuple.subwindow);
  expect_rejects_mutations(m);
}

TEST(Wire, AbsorbAndAckRoundtrip) {
  AbsorbMsg m;
  m.mig_id = 0;  // re-inject form
  m.tuples = {sample_tuple(1), sample_tuple(2)};
  AbsorbMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  EXPECT_EQ(d.mig_id, 0u);
  EXPECT_EQ(d.tuples.size(), 2u);
  expect_rejects_mutations(m);

  AbsorbAckMsg a;
  a.mig_id = 9;
  AbsorbAckMsg ad;
  ASSERT_TRUE(decode(encode(a), ad));
  EXPECT_EQ(ad.mig_id, 9u);
  expect_rejects_mutations(a);
}

TEST(Wire, SnapshotRoundtrip) {
  SnapshotMsg m;
  m.ckpt_id = 12;
  m.consumed_offset = 100;
  m.emit_offset = 100;
  for (std::uint64_t i = 0; i < 7; ++i) m.tuples.push_back(sample_tuple(i));
  SnapshotMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  EXPECT_EQ(d.ckpt_id, 12u);
  EXPECT_EQ(d.consumed_offset, 100u);
  ASSERT_EQ(d.tuples.size(), 7u);
  expect_rejects_mutations(m);

  CheckpointMsg c;
  c.ckpt_id = 12;
  CheckpointMsg cd;
  ASSERT_TRUE(decode(encode(c), cd));
  EXPECT_EQ(cd.ckpt_id, 12u);
  expect_rejects_mutations(c);
}

TEST(Wire, MatchBatchRoundtrip) {
  MatchBatchMsg m;
  m.emit_offset = 55;
  m.count = 2;
  m.pairs = {MatchPair{1, 2, 3}, MatchPair{4, 5, 6}};
  MatchBatchMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  EXPECT_EQ(d.emit_offset, 55u);
  EXPECT_EQ(d.count, 2u);
  ASSERT_EQ(d.pairs.size(), 2u);
  EXPECT_EQ(d.pairs[1].key, 4u);
  EXPECT_EQ(d.pairs[1].s_seq, 6u);
  expect_rejects_mutations(m);

  // Counts-only mode: count without pairs is legal.
  MatchBatchMsg counts;
  counts.emit_offset = 9;
  counts.count = 1'000'000;
  MatchBatchMsg cd;
  ASSERT_TRUE(decode(encode(counts), cd));
  EXPECT_EQ(cd.count, 1'000'000u);
  EXPECT_TRUE(cd.pairs.empty());
}

TEST(Wire, FinalRoundtrip) {
  FinalMsg m;
  m.stores = 1;
  m.probes = 2;
  m.matches = 3;
  m.suppressed = 4;
  m.dedup_skipped = 5;
  m.absorbed = 6;
  FinalMsg d;
  ASSERT_TRUE(decode(encode(m), d));
  EXPECT_EQ(d.absorbed, 6u);
  expect_rejects_mutations(m);
}

TEST(Wire, BadSideRejected) {
  ExtractMsg m;
  m.mig_id = 1;
  m.keys = {5};
  auto buf = encode(m);
  // side is the u8 right after the u64 mig_id.
  buf[8] = std::byte{2};
  ExtractMsg d;
  EXPECT_FALSE(decode(buf, d));
}

TEST(Wire, LyingCountCannotDriveAllocation) {
  // Hand-craft an ExtractMsg claiming 2^31 keys with no key bytes:
  // the decoder must reject it (count * elem > remaining) instead of
  // resizing a vector to gigabytes.
  ByteWriter w;
  w.u64(1);                 // mig_id
  w.u8(0);                  // side
  w.u32(0x8000'0000u);      // key count
  const auto buf = w.take();
  ExtractMsg d;
  EXPECT_FALSE(decode(buf, d));
}

// Overwrite the little-endian u32 count field at `off` in an encoded
// payload, then decode. The guard divides (n <= remaining / elem), so
// the exact boundary must pass and count+1 / saturated counts must
// fail without any large allocation.
template <typename M>
bool decode_with_count(std::vector<std::byte> buf, std::size_t off,
                       std::uint32_t count) {
  for (int i = 0; i < 4; ++i) {
    buf[off + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((count >> (8 * i)) & 0xFF);
  }
  M out;
  return decode(buf, out);
}

TEST(Wire, DataBatchCountBoundary) {
  DataBatchMsg m;
  for (std::uint64_t i = 0; i < 3; ++i) {
    m.entries.push_back(DataEntry{i, kDeliverStore, sample_record(i)});
  }
  const auto buf = encode(m);
  ASSERT_EQ(buf.size(), 4u + 3 * 42u);  // count + 3 fixed-width entries
  EXPECT_TRUE(decode_with_count<DataBatchMsg>(buf, 0, 3));
  EXPECT_FALSE(decode_with_count<DataBatchMsg>(buf, 0, 4));
  EXPECT_FALSE(decode_with_count<DataBatchMsg>(buf, 0, 2));  // done() fails
  EXPECT_FALSE(decode_with_count<DataBatchMsg>(buf, 0, 0xFFFF'FFFFu));
}

TEST(Wire, ExtractBatchCountBoundary) {
  ExtractBatchMsg m;
  m.mig_id = 1;
  m.consumed_offset = 2;
  for (std::uint64_t i = 0; i < 3; ++i) m.tuples.push_back(sample_tuple(i));
  const auto buf = encode(m);
  ASSERT_EQ(buf.size(), 20u + 3 * 37u);  // mig+offset+count, 37B tuples
  EXPECT_TRUE(decode_with_count<ExtractBatchMsg>(buf, 16, 3));
  EXPECT_FALSE(decode_with_count<ExtractBatchMsg>(buf, 16, 4));
  EXPECT_FALSE(decode_with_count<ExtractBatchMsg>(buf, 16, 0xFFFF'FFFFu));
}

TEST(Wire, MsgTypeNames) {
  EXPECT_STREQ(msg_type_name(MsgType::kHello), "Hello");
  EXPECT_STREQ(msg_type_name(MsgType::kFinal), "Final");
}

}  // namespace
}  // namespace fastjoin::net
