// Slow and abusive clients at the transport layer: the incremental
// decoder's mid-frame tracking (what the serving idle sweep uses to
// tell a slowloris from a quiet peer), a one-byte-per-write client
// that must still decode into exactly one frame, and an oversized
// declared length tearing the connection down instead of buffering.
#include "net/frame.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"

namespace fastjoin::net {
namespace {

using namespace std::chrono_literals;

std::string temp_sock_path(const char* tag) {
  return "/tmp/fastjoin-slow-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

TEST(FrameDecoder, MidFrameTracksPartialInput) {
  const std::vector<std::byte> payload(100, std::byte{0x42});
  const auto buf = encode_frame(7, payload);
  FrameDecoder dec;
  std::vector<Frame> out;
  EXPECT_FALSE(dec.mid_frame()) << "fresh decoder has nothing buffered";
  // Feed everything but the last byte, one byte at a time: the decoder
  // is mid-frame the whole way and emits nothing.
  for (std::size_t i = 0; i + 1 < buf.size(); ++i) {
    ASSERT_TRUE(dec.feed(&buf[i], 1, out));
    EXPECT_TRUE(dec.mid_frame()) << "byte " << i;
    EXPECT_TRUE(out.empty()) << "byte " << i;
  }
  // The final byte completes the frame and clears the buffer.
  ASSERT_TRUE(dec.feed(&buf[buf.size() - 1], 1, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, 7);
  EXPECT_EQ(out[0].payload, payload);
  EXPECT_FALSE(dec.mid_frame());
  EXPECT_EQ(dec.frames_decoded(), 1u);
}

TEST(FrameDecoder, TornHeaderAtEofIsMidFrame) {
  const auto buf = encode_frame(3, std::vector<std::byte>(32));
  FrameDecoder dec;
  std::vector<Frame> out;
  // Five bytes of header, then EOF: mid_frame is the tear detector.
  ASSERT_TRUE(dec.feed(buf.data(), 5, out));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(dec.mid_frame());
  EXPECT_FALSE(dec.broken());
}

// A drip-feeding client against the nonblocking Connection stack: the
// server must observe mid_frame() while the drip is in flight, then
// decode exactly one intact frame once the last byte lands.
TEST(Connection, OneBytePerWriteClientDecodesOnce) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  Endpoint ep;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = temp_sock_path("drip");
  std::vector<std::unique_ptr<Connection>> conns;
  std::vector<Frame> got;
  Acceptor acceptor(loop, ep, [&](Socket peer) {
    auto conn = std::make_unique<Connection>(loop, std::move(peer),
                                             Connection::Options{});
    Connection* raw = conn.get();
    conns.push_back(std::move(conn));
    raw->start([&got](Frame& f) { got.push_back(std::move(f)); },
               [](const std::string&, bool) {});
  });
  ASSERT_TRUE(acceptor.ok()) << acceptor.error();

  const std::vector<std::byte> payload(64, std::byte{0x5C});
  const auto buf = encode_frame(11, payload);
  std::atomic<bool> half_sent{false};
  std::atomic<bool> proceed{false};
  std::atomic<bool> client_ok{true};
  std::thread client([&] {
    std::string err;
    Socket s = connect_with_retry(ep, 5'000ms, &err);
    if (!s.valid()) {
      client_ok = false;
      half_sent = true;
      return;
    }
    // First half, one byte per write() call...
    for (std::size_t i = 0; i < buf.size() / 2; ++i) {
      if (!send_all(s, &buf[i], 1)) client_ok = false;
    }
    half_sent = true;
    // ...hold until the server has seen the stall, then finish.
    while (!proceed.load()) std::this_thread::sleep_for(1ms);
    for (std::size_t i = buf.size() / 2; i < buf.size(); ++i) {
      if (!send_all(s, &buf[i], 1)) client_ok = false;
    }
  });

  // Pump until the half-frame is buffered server-side: mid_frame()
  // must be visible — this is the slowloris signature.
  const auto deadline = std::chrono::steady_clock::now() + 15s;
  bool saw_mid_frame = false;
  while (!saw_mid_frame && std::chrono::steady_clock::now() < deadline) {
    loop.run_once(2ms);
    saw_mid_frame =
        half_sent.load() && !conns.empty() && conns[0]->mid_frame();
  }
  ASSERT_TRUE(saw_mid_frame);
  EXPECT_TRUE(got.empty()) << "no frame may be delivered mid-drip";
  proceed = true;
  while (got.empty() && std::chrono::steady_clock::now() < deadline) {
    loop.run_once(2ms);
  }
  client.join();
  EXPECT_TRUE(client_ok.load());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type, 11);
  EXPECT_EQ(got[0].payload, payload);
  EXPECT_FALSE(conns[0]->mid_frame()) << "buffer must drain at the boundary";
  ::unlink(ep.path.c_str());
}

// A declared length over the connection's max_payload is an abusive
// header, not a buffering request: the connection is torn down
// unclean before any payload byte is read.
TEST(Connection, OversizedDeclaredLengthTearsConnection) {
  EventLoop loop;
  ASSERT_TRUE(loop.ok());
  Endpoint ep;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = temp_sock_path("huge");
  std::vector<std::unique_ptr<Connection>> conns;
  std::atomic<int> closes{0};
  bool close_was_clean = true;
  int frames = 0;
  Acceptor acceptor(loop, ep, [&](Socket peer) {
    Connection::Options opts;
    opts.max_payload = 1024;  // serving-style tight ceiling
    auto conn =
        std::make_unique<Connection>(loop, std::move(peer), opts);
    Connection* raw = conn.get();
    conns.push_back(std::move(conn));
    raw->start([&frames](Frame&) { ++frames; },
               [&](const std::string&, bool clean) {
                 close_was_clean = clean;
                 closes.fetch_add(1);
               });
  });
  ASSERT_TRUE(acceptor.ok()) << acceptor.error();

  std::atomic<bool> client_saw_eof{false};
  std::thread client([&] {
    std::string err;
    Socket s = connect_with_retry(ep, 5'000ms, &err);
    ASSERT_TRUE(s.valid()) << err;
    // 1 MiB declared where 1 KiB is allowed.
    const auto buf = encode_frame(5, std::vector<std::byte>(1u << 20));
    send_all(s, buf.data(), buf.size());  // may fail midway: server resets
    std::byte b;
    const IoResult r = read_some(s, &b, 1);
    client_saw_eof = r.eof || !r.ok();
  });

  const auto deadline = std::chrono::steady_clock::now() + 15s;
  while (closes.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    loop.run_once(2ms);
  }
  client.join();
  ASSERT_EQ(closes.load(), 1);
  EXPECT_FALSE(close_was_clean);
  EXPECT_TRUE(client_saw_eof.load()) << "client must see the teardown";
  EXPECT_EQ(frames, 0) << "the oversized frame must never be delivered";
  ::unlink(ep.path.c_str());
}

}  // namespace
}  // namespace fastjoin::net
