// Tests for the schedule explorer (src/protocol/explorer.hpp):
// strategy coverage, counterexample shrinking, and the trace-artifact
// round trip that makes failures replayable.
#include <gtest/gtest.h>

#include <string>

#include "protocol/explorer.hpp"
#include "protocol/model.hpp"

namespace fastjoin::protocol {
namespace {

TEST(ProtocolExplorer, DirectedSweepCoversPhaseFaultGrid) {
  const Model m(ModelConfig{});
  Explorer ex(m, ExplorerConfig{});
  auto ce = ex.directed_sweep();
  ASSERT_FALSE(ce.has_value())
      << ce->violation.invariant << ": " << ce->violation.detail;
  const auto& cov = ex.stats().coverage;
  for (const char* phase : {"select-wait", "hold-wait", "routed",
                            "forward-wait", "absorb", "release"}) {
    for (const char* fault : {"crash-src", "crash-dst"}) {
      const std::string key = std::string(phase) + "/" + fault;
      EXPECT_TRUE(cov.count(key)) << "missing coverage: " << key;
    }
  }
  for (const char* phase : {"select-wait", "hold-wait", "forward-wait"}) {
    const std::string key = std::string(phase) + "/delay";
    EXPECT_TRUE(cov.count(key)) << "missing coverage: " << key;
  }
}

TEST(ProtocolExplorer, DfsOnShippedProtocolIsClean) {
  ExplorerConfig ec;
  ec.max_depth = 7;
  ec.max_schedules = 300;
  const Model m(ModelConfig{});
  Explorer ex(m, ec);
  auto ce = ex.dfs();
  EXPECT_FALSE(ce.has_value())
      << ce->violation.invariant << ": " << ce->violation.detail;
  EXPECT_GT(ex.stats().schedules, 0u);
  EXPECT_GT(ex.stats().events, 0u);
}

TEST(ProtocolExplorer, RandomWalksAreDeterministicPerSeed) {
  const Model m(ModelConfig{});
  ExplorerConfig ec;
  ec.seed = 42;
  Explorer a(m, ec);
  Explorer b(m, ec);
  EXPECT_FALSE(a.random_walks(20).has_value());
  EXPECT_FALSE(b.random_walks(20).has_value());
  EXPECT_EQ(a.stats().schedules, b.stats().schedules);
  EXPECT_EQ(a.stats().events, b.stats().events);
}

TEST(ProtocolExplorer, InjectedSkipHoldAckIsCaughtAndShrunk) {
  ModelConfig cfg;
  cfg.skip_hold_ack = true;
  const Model m(cfg);
  ExplorerConfig ec;
  ec.max_depth = 9;
  ec.max_schedules = 3000;
  Explorer ex(m, ec);
  auto ce = ex.directed_sweep();
  if (!ce) ce = ex.dfs();
  if (!ce) ce = ex.random_walks(300);
  ASSERT_TRUE(ce.has_value())
      << "deliberately broken transition (publish without HoldAck) "
         "was not caught";
  EXPECT_FALSE(ce->violation.invariant.empty());
  // The shrunk schedule must still reproduce the same invariant.
  auto v = ex.run_schedule(ce->schedule);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, ce->violation.invariant);
  // And shrinking must not have left obviously removable events: every
  // single-event deletion either changes the invariant or goes clean.
  for (std::size_t i = 0; i < ce->schedule.size(); ++i) {
    std::vector<Event> cand = ce->schedule;
    cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
    auto cv = ex.run_schedule(cand);
    EXPECT_TRUE(!cv || cv->invariant != ce->violation.invariant)
        << "schedule not 1-minimal at index " << i;
  }
}

TEST(ProtocolExplorer, InjectedSkipAbsorbDedupIsCaught) {
  ModelConfig cfg;
  cfg.skip_absorb_dedup = true;
  cfg.max_delays = 2;
  cfg.max_crashes = 2;
  cfg.num_records = 12;
  const Model m(cfg);
  ExplorerConfig ec;
  ec.max_depth = 9;
  ec.max_schedules = 3000;
  Explorer ex(m, ec);
  auto ce = ex.directed_sweep();
  if (!ce) ce = ex.dfs();
  if (!ce) ce = ex.random_walks(300);
  ASSERT_TRUE(ce.has_value())
      << "deliberately broken transition (absorb re-merge without "
         "seq dedup) was not caught";
  auto v = ex.run_schedule(ce->schedule);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, ce->violation.invariant);
}

TEST(ProtocolExplorer, TraceArtifactRoundTrips) {
  ModelConfig cfg;
  cfg.skip_hold_ack = true;
  const Model m(cfg);
  ExplorerConfig ec;
  ec.max_depth = 9;
  ec.max_schedules = 3000;
  Explorer ex(m, ec);
  auto ce = ex.directed_sweep();
  if (!ce) ce = ex.dfs();
  if (!ce) ce = ex.random_walks(300);
  ASSERT_TRUE(ce.has_value());

  const std::string text = format_trace(m, *ce);
  ModelConfig rcfg;
  std::vector<Event> sched;
  std::string invariant;
  ASSERT_TRUE(parse_trace(text, &rcfg, &sched, &invariant));
  EXPECT_EQ(rcfg.producers, cfg.producers);
  EXPECT_EQ(rcfg.num_records, cfg.num_records);
  EXPECT_EQ(rcfg.skip_hold_ack, true);
  EXPECT_EQ(invariant, ce->violation.invariant);
  ASSERT_EQ(sched.size(), ce->schedule.size());
  for (std::size_t i = 0; i < sched.size(); ++i) {
    EXPECT_TRUE(sched[i] == ce->schedule[i]) << "event " << i << " differs";
  }
  // Replaying the parsed trace on a fresh model reproduces the exact
  // violation — the determinism the dumped artifact promises.
  const Model rm(rcfg);
  Explorer rex(rm, ec);
  auto rv = rex.run_schedule(sched);
  ASSERT_TRUE(rv.has_value());
  EXPECT_EQ(rv->invariant, invariant);
}

TEST(ProtocolExplorer, ParseTraceRejectsGarbage) {
  ModelConfig cfg;
  std::vector<Event> sched;
  std::string invariant;
  EXPECT_FALSE(parse_trace("not a trace", &cfg, &sched, &invariant));
  EXPECT_FALSE(parse_trace("event 1 0 0\n", &cfg, &sched, &invariant));
  // kind out of range
  sched.clear();
  EXPECT_FALSE(parse_trace("config workers=3\nevent 99 0 0\n", &cfg,
                           &sched, &invariant));
}

TEST(ProtocolExplorer, RunScheduleSkipsUnmatchedEvents) {
  const Model m(ModelConfig{});
  Explorer ex(m, ExplorerConfig{});
  // A crash of a non-existent worker index is never enabled; the
  // replay must skip it (this tolerance is what makes ddmin candidates
  // runnable) and still drain clean.
  std::vector<Event> sched = {{EvKind::kPush, 0, 0},
                              {EvKind::kCrash, 99, 0},
                              {EvKind::kData, 0, 0}};
  std::vector<Event> applied;
  auto v = ex.run_schedule(sched, &applied);
  EXPECT_FALSE(v.has_value());
  for (const auto& e : applied) EXPECT_NE(e.a, 99u);
}

}  // namespace
}  // namespace fastjoin::protocol
