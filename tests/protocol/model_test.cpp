// Tests for the protocol state machine (src/protocol/model.hpp): the
// side-effect-free twin of LiveEngine's supervised-migration /
// offset-replay control plane.
#include <gtest/gtest.h>

#include <set>

#include "protocol/explorer.hpp"
#include "protocol/model.hpp"

namespace fastjoin::protocol {
namespace {

ModelConfig quiet_config() {
  ModelConfig cfg;
  cfg.max_crashes = 0;
  cfg.max_delays = 0;
  cfg.max_checkpoints = 0;
  cfg.max_migrations = 0;
  return cfg;
}

// Drive a state with the first enabled non-fault event until the
// monitor cannot make progress, then drain. Mirrors the directed
// driver in the explorer.
std::optional<Violation> drive_to_quiescence(const Model& m, State& s,
                                             bool allow_migration) {
  for (int step = 0; step < 100'000; ++step) {
    auto evs = m.enabled(s, /*drain=*/!allow_migration);
    if (evs.empty()) break;
    bool applied = false;
    for (const auto& e : evs) {
      if (e.kind == EvKind::kCrash || e.kind == EvKind::kDelay ||
          e.kind == EvKind::kCheckpoint) {
        continue;
      }
      if (auto v = m.apply(s, e)) return v;
      applied = true;
      break;
    }
    if (!applied) break;
  }
  return m.drain_and_check(s);
}

TEST(ProtocolModel, FaultFreeRunEmitsEveryExpectedPair) {
  const Model m(quiet_config());
  State s = m.initial();
  auto v = m.drain_and_check(s);
  ASSERT_FALSE(v.has_value()) << v->invariant << ": " << v->detail;
  EXPECT_EQ(s.emitted, m.expected_pairs());
  EXPECT_TRUE(s.lost.empty());
}

TEST(ProtocolModel, StreamIsKeyAffine) {
  ModelConfig cfg = quiet_config();
  cfg.producers = 2;
  cfg.num_records = 40;
  const Model m(cfg);
  for (std::uint32_t i = 0; i < m.stream().size(); ++i) {
    // Key k always rides partition k mod P, so per-key delivery order
    // is schedule-independent — the property every completeness
    // invariant leans on.
    SUCCEED();
  }
  State s = m.initial();
  auto v = m.drain_and_check(s);
  ASSERT_FALSE(v.has_value()) << v->invariant << ": " << v->detail;
  EXPECT_EQ(s.emitted, m.expected_pairs());
}

TEST(ProtocolModel, MigrationWithoutFaultsPreservesCompleteness) {
  ModelConfig cfg = quiet_config();
  cfg.max_migrations = 1;
  const Model m(cfg);
  State s = m.initial();
  auto v = drive_to_quiescence(m, s, /*allow_migration=*/true);
  ASSERT_FALSE(v.has_value()) << v->invariant << ": " << v->detail;
  EXPECT_EQ(s.emitted, m.expected_pairs());
  EXPECT_TRUE(s.lost.empty());
}

TEST(ProtocolModel, CrashWithReplayLosesNothing) {
  ModelConfig cfg = quiet_config();
  cfg.max_crashes = 1;
  cfg.replay = true;
  const Model m(cfg);
  State s = m.initial();
  // Push and deliver a little, crash worker 0, then drain (the drain
  // respawns and replays).
  for (int i = 0; i < 4; ++i) {
    auto evs = m.enabled(s, /*drain=*/false);
    ASSERT_FALSE(evs.empty());
    ASSERT_FALSE(m.apply(s, evs.front()).has_value());
  }
  ASSERT_FALSE(m.apply(s, {EvKind::kCrash, 0, 0}).has_value());
  auto v = m.drain_and_check(s);
  ASSERT_FALSE(v.has_value()) << v->invariant << ": " << v->detail;
  EXPECT_EQ(s.emitted, m.expected_pairs());
  EXPECT_TRUE(s.lost.empty());
}

TEST(ProtocolModel, CrashWithoutReplayLedgersTheLoss) {
  ModelConfig cfg = quiet_config();
  cfg.max_crashes = 1;
  cfg.replay = false;
  const Model m(cfg);
  State s = m.initial();
  for (int i = 0; i < 6; ++i) {
    auto evs = m.enabled(s, /*drain=*/false);
    ASSERT_FALSE(evs.empty());
    ASSERT_FALSE(m.apply(s, evs.front()).has_value());
  }
  ASSERT_FALSE(m.apply(s, {EvKind::kCrash, 0, 0}).has_value());
  // Without the log, whatever the crash ate must be *explained*: the
  // final completeness check accepts a missing pair only when one of
  // its records is in the drop ledger — drain_and_check returning
  // clean IS the assertion.
  auto v = m.drain_and_check(s);
  ASSERT_FALSE(v.has_value()) << v->invariant << ": " << v->detail;
  EXPECT_TRUE(s.emitted.size() <= m.expected_pairs().size());
}

TEST(ProtocolModel, DrainModeEnablesNoFaults) {
  ModelConfig cfg;
  cfg.max_crashes = 2;
  cfg.max_delays = 2;
  cfg.max_checkpoints = 2;
  const Model m(cfg);
  State s = m.initial();
  for (const auto& e : m.enabled(s, /*drain=*/true)) {
    EXPECT_NE(e.kind, EvKind::kCrash);
    EXPECT_NE(e.kind, EvKind::kDelay);
    EXPECT_NE(e.kind, EvKind::kCheckpoint);
  }
}

TEST(ProtocolModel, IndependenceIsConservative) {
  const Model m(ModelConfig{});
  // Pushes by different producers commute; same producer does not.
  ModelConfig two = ModelConfig{};
  two.producers = 2;
  const Model m2(two);
  EXPECT_TRUE(m2.independent({EvKind::kPush, 0, 0}, {EvKind::kPush, 1, 0}));
  EXPECT_FALSE(m.independent({EvKind::kPush, 0, 0}, {EvKind::kPush, 0, 0}));
  // Data pops on different workers commute; control handling never
  // commutes with control handling (both ends may write monitor state).
  EXPECT_TRUE(m.independent({EvKind::kData, 0, 0}, {EvKind::kData, 1, 0}));
  EXPECT_FALSE(m.independent({EvKind::kCtrl, 0, 0}, {EvKind::kCtrl, 1, 0}));
  // Global events (faults, monitor, respawn) never commute.
  EXPECT_FALSE(m.independent({EvKind::kCrash, 0, 0}, {EvKind::kPush, 1, 0}));
  EXPECT_FALSE(
      m.independent({EvKind::kMonitor, 0, 0}, {EvKind::kData, 1, 0}));
}

TEST(ProtocolModel, DigestIsOrderSensitiveAndReproducible) {
  const Model m(ModelConfig{});
  State a = m.initial();
  State b = m.initial();
  EXPECT_EQ(m.digest(a), m.digest(b));
  ASSERT_FALSE(m.apply(a, {EvKind::kPush, 0, 0}).has_value());
  EXPECT_NE(m.digest(a), m.digest(b));
  ASSERT_FALSE(m.apply(b, {EvKind::kPush, 0, 0}).has_value());
  EXPECT_EQ(m.digest(a), m.digest(b));
}

// Regression: a source crash between SelectExtract's reply and the
// hold acknowledgment used to leave the migration published against a
// rebuilt source slot (its replay already restored the batch), or —
// after the generation-check fix — leave the target holding forever
// when the abort forgot to release it. Both defects reproduced on this
// exact schedule; it must now drain clean.
TEST(ProtocolModel, SrcRespawnBeforePublishAbortsAndReleasesHold) {
  const Model m(ModelConfig{});
  Explorer ex(m, ExplorerConfig{});
  const std::vector<Event> schedule = {
      {EvKind::kPush, 0, 0},  {EvKind::kData, 2, 0}, {EvKind::kMonitor, 0, 0},
      {EvKind::kCtrl, 2, 0},  {EvKind::kCrash, 2, 0},
  };
  auto v = ex.run_schedule(schedule);
  EXPECT_FALSE(v.has_value()) << v->invariant << ": " << v->detail;
}

TEST(ProtocolModel, EventAndPhaseNamesAreStable) {
  EXPECT_EQ(std::string(mon_phase_name(MonPhase::kIdle)), "idle");
  EXPECT_EQ(std::string(mon_phase_name(MonPhase::kHoldWait)), "hold-wait");
  EXPECT_EQ(std::string(mon_phase_name(MonPhase::kRelease)), "release");
  EXPECT_NE(event_name({EvKind::kPush, 0, 0}),
            event_name({EvKind::kCrash, 0, 0}));
}

}  // namespace
}  // namespace fastjoin::protocol
