// Partial-key-grouping strategy and elastic dispatcher growth.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/trace.hpp"
#include "engine/engine.hpp"

namespace fastjoin {
namespace {

Record rec(Side side, KeyId key) {
  Record r;
  r.side = side;
  r.key = key;
  return r;
}

TEST(PartialKey, ProbesCoverBothCandidates) {
  Dispatcher d(PartitionStrategy::kPartialKey, 16);
  for (KeyId k = 0; k < 500; ++k) {
    const auto [a, b] = d.pkg_candidates(k);
    for (int i = 0; i < 4; ++i) {
      const auto dst = d.route_store(rec(Side::kR, k));
      EXPECT_TRUE(dst == a || dst == b);
      std::vector<InstanceId> probes;
      d.route_probe(Side::kR, rec(Side::kS, k), probes);
      EXPECT_NE(std::find(probes.begin(), probes.end(), dst),
                probes.end());
    }
  }
}

TEST(PartialKey, HotKeySplitsAcrossCandidates) {
  Dispatcher d(PartitionStrategy::kPartialKey, 16);
  std::map<InstanceId, int> counts;
  for (int i = 0; i < 1000; ++i) {
    ++counts[d.route_store(rec(Side::kR, 42))];
  }
  const auto [a, b] = d.pkg_candidates(42);
  if (a != b) {
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_NEAR(counts[a], 500, 1);
    EXPECT_NEAR(counts[b], 500, 1);
  }
}

TEST(PartialKey, StoresBalanceBetterThanHash) {
  Dispatcher pkg(PartitionStrategy::kPartialKey, 8);
  Dispatcher hash(PartitionStrategy::kHash, 8);
  // Skewed key stream: key 0 dominates.
  std::vector<int> pkg_counts(8, 0), hash_counts(8, 0);
  for (int i = 0; i < 10'000; ++i) {
    const KeyId k = (i % 10 == 0) ? 1 + (i % 50) : 0;
    ++pkg_counts[pkg.route_store(rec(Side::kR, k))];
    ++hash_counts[hash.route_store(rec(Side::kR, k))];
  }
  const int pkg_max = *std::max_element(pkg_counts.begin(), pkg_counts.end());
  const int hash_max =
      *std::max_element(hash_counts.begin(), hash_counts.end());
  EXPECT_LT(pkg_max, hash_max);
}

TEST(PartialKey, ExactlyOnceEndToEnd) {
  KeyStreamSpec r;
  r.num_keys = 60;
  r.zipf_s = 1.3;
  r.seed = 4;
  KeyStreamSpec s = r;
  s.seed = 1004;
  TraceConfig tc;
  tc.total_records = 5000;
  tc.r_rate = 200'000;
  tc.s_rate = 200'000;

  std::map<KeyId, std::pair<std::uint64_t, std::uint64_t>> counts;
  {
    TraceGenerator gen(r, s, tc);
    while (auto x = gen.next()) {
      auto& [cr, cs] = counts[x->key];
      (x->side == Side::kR ? cr : cs)++;
    }
  }
  std::uint64_t expected = 0;
  for (const auto& [_, rs] : counts) expected += rs.first * rs.second;

  EngineConfig cfg;
  cfg.instances = 6;
  cfg.strategy = PartitionStrategy::kPartialKey;
  cfg.balancer.enabled = false;
  cfg.metrics.record_pairs = true;
  cfg.drain = true;
  TraceGenerator gen(r, s, tc);
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, from_seconds(100));
  EXPECT_EQ(rep.results, expected);
  std::set<std::tuple<KeyId, std::uint64_t, std::uint64_t>> seen;
  for (const auto& p : rep.pairs) {
    EXPECT_TRUE(seen.insert({p.key, p.r_seq, p.s_seq}).second);
  }
}

TEST(DispatcherGrow, NewInstancesOnlyViaOverrides) {
  Dispatcher d(PartitionStrategy::kHash, 4);
  d.grow(2);
  EXPECT_EQ(d.group_size(), 6u);
  // Hash routing still targets the original 4.
  for (KeyId k = 0; k < 1000; ++k) {
    EXPECT_LT(d.hash_route(Side::kR, k), 4u);
  }
  // Overrides may now point at the new instances.
  d.apply_override(Side::kR, 7, 5);
  EXPECT_EQ(d.hash_route(Side::kR, 7), 5u);
}

}  // namespace
}  // namespace fastjoin
