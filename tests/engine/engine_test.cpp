#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <map>

#include "datagen/trace.hpp"

namespace fastjoin {
namespace {

/// Replays a prepared vector of records.
class VectorSource final : public RecordSource {
 public:
  explicit VectorSource(std::vector<Record> records)
      : records_(std::move(records)) {}
  std::optional<Record> next() override {
    if (pos_ >= records_.size()) return std::nullopt;
    return records_[pos_++];
  }

 private:
  std::vector<Record> records_;
  std::size_t pos_ = 0;
};

std::vector<Record> tiny_trace(int n, int num_keys, SimTime gap) {
  std::vector<Record> out;
  std::uint64_t r_seq = 0, s_seq = 0;
  for (int i = 0; i < n; ++i) {
    Record rec;
    rec.side = (i % 2 == 0) ? Side::kR : Side::kS;
    rec.key = static_cast<KeyId>(i % num_keys);
    rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
    rec.ts = i * gap;
    rec.payload = i;
    out.push_back(rec);
  }
  return out;
}

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.instances = 4;
  cfg.balancer.enabled = false;
  cfg.drain = true;
  return cfg;
}

TEST(Engine, ProcessesEveryRecordOnce) {
  VectorSource src(tiny_trace(1000, 10, 1000));
  SimJoinEngine engine(small_config());
  const auto rep = engine.run(src, from_seconds(100));
  EXPECT_EQ(rep.records_in, 1000u);
  // Each record is stored once and probed once (hash routing).
  EXPECT_EQ(rep.stores, 1000u);
  EXPECT_EQ(rep.probes, 1000u);
}

TEST(Engine, ResultCountMatchesSelfJoinFormula) {
  // With alternating R/S on one key, after n pairs the total number of
  // matches is the number of (r, s) pairs where r precedes s or
  // vice versa with the same key = for each S tuple i, the count of R
  // tuples before it, plus symmetric for R probing S.
  const int n = 100;  // 50 R + 50 S alternating, single key
  VectorSource src(tiny_trace(n, 1, 1000));
  SimJoinEngine engine(small_config());
  const auto rep = engine.run(src, from_seconds(100));
  // R_i arrives at 2i, S_i at 2i+1.
  // S_i (probe on R-side) matches R_0..R_i -> i+1 matches.
  // R_i (probe on S-side) matches S_0..S_{i-1} -> i matches.
  std::uint64_t expected = 0;
  for (int i = 0; i < n / 2; ++i) expected += (i + 1) + i;
  EXPECT_EQ(rep.results, expected);
}

TEST(Engine, FeedStopsAtHorizon) {
  VectorSource src(tiny_trace(1000, 10, kNanosPerSec));  // 1 rec/sec
  SimJoinEngine engine(small_config());
  const auto rep = engine.run(src, from_seconds(10));
  EXPECT_LE(rep.records_in, 11u);
  EXPECT_GT(rep.records_in, 5u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    KeyStreamSpec r;
    r.num_keys = 100;
    r.zipf_s = 1.0;
    r.seed = 1;
    KeyStreamSpec s = r;
    s.seed = 2;
    TraceConfig tc;
    tc.total_records = 5000;
    tc.r_rate = 100'000;
    tc.s_rate = 100'000;
    TraceGenerator gen(r, s, tc);
    SimJoinEngine engine(small_config());
    return engine.run(gen, from_seconds(100));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.sim_end, b.sim_end);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
}

TEST(Engine, SkewProducesImbalanceWithoutBalancer) {
  KeyStreamSpec r;
  r.num_keys = 1000;
  r.zipf_s = 1.4;
  r.seed = 3;
  KeyStreamSpec s = r;
  s.seed = 4;
  TraceConfig tc;
  tc.total_records = 60'000;
  tc.r_rate = 400'000;
  tc.s_rate = 400'000;

  auto cfg = small_config();
  cfg.instances = 8;
  cfg.balancer.monitor_period = kNanosPerSec / 100;
  TraceGenerator gen(r, s, tc);
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, from_seconds(100));
  // Heavily skewed keys on 8 instances: LI must be clearly above 1.
  EXPECT_GT(rep.mean_li, 1.5);
  EXPECT_EQ(rep.migrations, 0u);  // balancer off
}

TEST(Engine, BalancerTriggersMigrationsUnderSkew) {
  KeyStreamSpec r;
  r.num_keys = 1000;
  r.zipf_s = 1.4;
  r.seed = 3;
  KeyStreamSpec s = r;
  s.seed = 4;
  TraceConfig tc;
  tc.total_records = 60'000;
  tc.r_rate = 400'000;
  tc.s_rate = 400'000;

  auto cfg = small_config();
  cfg.instances = 8;
  cfg.balancer.enabled = true;
  cfg.balancer.planner.theta = 2.0;
  cfg.balancer.monitor_period = kNanosPerSec / 100;
  cfg.balancer.min_heaviest_load = 100.0;
  TraceGenerator gen(r, s, tc);
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, from_seconds(100));
  EXPECT_GT(rep.migrations, 0u);
  EXPECT_GT(rep.tuples_migrated, 0u);
  EXPECT_FALSE(rep.migration_log.empty());
  EXPECT_GE(rep.migration_log[0].li_before, 2.0);
}

TEST(Engine, SystemPresetsConfigure) {
  EngineConfig cfg;
  apply_system(cfg, SystemKind::kBiStream);
  EXPECT_EQ(cfg.strategy, PartitionStrategy::kHash);
  EXPECT_FALSE(cfg.balancer.enabled);
  apply_system(cfg, SystemKind::kBiStreamContRand);
  EXPECT_EQ(cfg.strategy, PartitionStrategy::kContRand);
  apply_system(cfg, SystemKind::kFastJoin);
  EXPECT_TRUE(cfg.balancer.enabled);
  EXPECT_EQ(cfg.balancer.planner.selector, KeySelectorKind::kGreedyFit);
  apply_system(cfg, SystemKind::kFastJoinSA);
  EXPECT_EQ(cfg.balancer.planner.selector, KeySelectorKind::kSAFit);
}

TEST(Engine, ContRandProcessesWithBroadcastFanout) {
  VectorSource src(tiny_trace(1000, 10, 1000));
  auto cfg = small_config();
  cfg.strategy = PartitionStrategy::kContRand;
  cfg.contrand_group = 2;
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(src, from_seconds(100));
  EXPECT_EQ(rep.stores, 1000u);
  // Probes fan out to the whole subgroup.
  EXPECT_EQ(rep.probes, 2000u);
}

TEST(Engine, ThroughputSeriesIsPopulated) {
  KeyStreamSpec r;
  r.num_keys = 50;
  KeyStreamSpec s = r;
  s.seed = 9;
  TraceConfig tc;
  tc.total_records = 40'000;
  tc.r_rate = 10'000;
  tc.s_rate = 10'000;
  TraceGenerator gen(r, s, tc);
  SimJoinEngine engine(small_config());
  const auto rep = engine.run(gen, from_seconds(100));
  EXPECT_GT(rep.throughput_ts.size(), 1u);
  EXPECT_GT(rep.mean_throughput, 0.0);
  EXPECT_GT(rep.mean_latency_ms, 0.0);
  EXPECT_GE(rep.p99_latency_ms, rep.p50_latency_ms);
}

}  // namespace
}  // namespace fastjoin
