// Checkpointing and instance-failure injection: crashed instances lose
// their state, recover from the latest checkpoint, and the system keeps
// running (results since the checkpoint are lost, never duplicated).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/trace.hpp"
#include "engine/engine.hpp"

namespace fastjoin {
namespace {

KeyStreamSpec spec(std::uint64_t seed) {
  KeyStreamSpec s;
  s.num_keys = 500;
  s.zipf_s = 1.0;
  s.seed = seed;
  return s;
}

TraceConfig trace_cfg(std::uint64_t total) {
  TraceConfig tc;
  tc.total_records = total;
  tc.r_rate = 200'000;
  tc.s_rate = 200'000;
  return tc;
}

EngineConfig base_config() {
  EngineConfig cfg;
  cfg.instances = 4;
  cfg.balancer.enabled = false;
  cfg.drain = true;
  return cfg;
}

std::uint64_t expected_pairs(KeyStreamSpec r, KeyStreamSpec s,
                             TraceConfig tc) {
  std::map<KeyId, std::pair<std::uint64_t, std::uint64_t>> counts;
  TraceGenerator gen(r, s, tc);
  while (auto x = gen.next()) {
    auto& [cr, cs] = counts[x->key];
    (x->side == Side::kR ? cr : cs)++;
  }
  std::uint64_t total = 0;
  for (const auto& [_, rs] : counts) total += rs.first * rs.second;
  return total;
}

TEST(FaultTolerance, CrashWithoutCheckpointLosesResults) {
  const auto r = spec(1);
  const auto s = spec(1001);
  const auto tc = trace_cfg(20'000);
  const auto expected = expected_pairs(r, s, tc);

  TraceGenerator gen(r, s, tc);
  auto cfg = base_config();
  SimJoinEngine engine(cfg);
  engine.schedule_failure(from_seconds(0.025), Side::kR, 0);
  const auto rep = engine.run(gen, from_seconds(100));
  EXPECT_EQ(rep.failures, 1u);
  EXPECT_EQ(rep.tuples_recovered, 0u);
  EXPECT_LT(rep.results, expected);  // joins lost with the state
  EXPECT_GT(rep.results, expected / 2);  // but only one instance's worth
}

TEST(FaultTolerance, CheckpointLimitsLoss) {
  const auto r = spec(2);
  const auto s = spec(1002);
  const auto tc = trace_cfg(20'000);
  const auto expected = expected_pairs(r, s, tc);

  auto run_with = [&](SimTime checkpoint_period) {
    TraceGenerator gen(r, s, tc);
    auto cfg = base_config();
    cfg.checkpoint_period = checkpoint_period;
    SimJoinEngine engine(cfg);
    engine.schedule_failure(from_seconds(0.04), Side::kR, 1);
    return engine.run(gen, from_seconds(100));
  };

  const auto none = run_with(0);
  const auto coarse = run_with(from_seconds(0.02));
  const auto fine = run_with(from_seconds(0.005));

  EXPECT_LT(none.results, coarse.results);
  EXPECT_LE(coarse.results, fine.results);
  EXPECT_LE(fine.results, expected);
  EXPECT_GT(coarse.tuples_recovered, 0u);
}

TEST(FaultTolerance, NeverDuplicatesResults) {
  const auto r = spec(3);
  const auto s = spec(1003);
  const auto tc = trace_cfg(15'000);
  const auto expected = expected_pairs(r, s, tc);

  TraceGenerator gen(r, s, tc);
  auto cfg = base_config();
  cfg.checkpoint_period = from_seconds(0.005);
  cfg.metrics.record_pairs = true;
  SimJoinEngine engine(cfg);
  engine.schedule_failure(from_seconds(0.02), Side::kR, 0);
  engine.schedule_failure(from_seconds(0.03), Side::kS, 2);
  const auto rep = engine.run(gen, from_seconds(100));

  EXPECT_EQ(rep.failures, 2u);
  EXPECT_LE(rep.results, expected);
  std::set<std::tuple<KeyId, std::uint64_t, std::uint64_t>> seen;
  for (const auto& p : rep.pairs) {
    EXPECT_TRUE(seen.insert({p.key, p.r_seq, p.s_seq}).second)
        << "duplicated join after recovery";
  }
}

TEST(FaultTolerance, SystemKeepsProcessingAfterCrash) {
  const auto r = spec(4);
  const auto s = spec(1004);
  const auto tc = trace_cfg(20'000);

  TraceGenerator gen(r, s, tc);
  auto cfg = base_config();
  cfg.checkpoint_period = from_seconds(0.01);
  SimJoinEngine engine(cfg);
  engine.schedule_failure(from_seconds(0.02), Side::kR, 0);
  const auto rep = engine.run(gen, from_seconds(100));
  // All records still consumed; the crashed instance processed new
  // traffic after recovery.
  EXPECT_EQ(rep.records_in, tc.total_records);
  EXPECT_GT(engine.instance(Side::kR, 0).store().size(), 0u);
}

TEST(FaultTolerance, CrashOfUnknownInstanceIsIgnored) {
  TraceGenerator gen(spec(5), spec(1005), trace_cfg(2'000));
  auto cfg = base_config();
  SimJoinEngine engine(cfg);
  engine.schedule_failure(from_seconds(0.001), Side::kR, 99);
  const auto rep = engine.run(gen, from_seconds(100));
  EXPECT_EQ(rep.failures, 0u);
  EXPECT_EQ(rep.failures_skipped, 1u);
}

TEST(FaultTolerance, WorksTogetherWithMigrations) {
  TraceGenerator gen(spec(6), spec(1006), trace_cfg(30'000));
  auto cfg = base_config();
  cfg.balancer.enabled = true;
  cfg.balancer.planner.theta = 1.5;
  cfg.balancer.min_heaviest_load = 10.0;
  cfg.balancer.monitor_period = kNanosPerSec / 100;
  cfg.checkpoint_period = from_seconds(0.01);
  SimJoinEngine engine(cfg);
  engine.schedule_failure(from_seconds(0.03), Side::kS, 1);
  const auto rep = engine.run(gen, from_seconds(100));
  EXPECT_GT(rep.results, 0u);
  // Crashes are never skipped anymore: a crash that lands mid-migration
  // aborts the migration first, then proceeds.
  EXPECT_EQ(rep.failures, 1u);
  EXPECT_EQ(rep.failures_skipped, 0u);
}

TEST(FaultTolerance, CrashDuringMigrationAborts) {
  const auto r = spec(7);
  const auto s = spec(1007);
  const auto tc = trace_cfg(30'000);
  const auto expected = expected_pairs(r, s, tc);

  TraceGenerator gen(r, s, tc);
  auto cfg = base_config();
  cfg.balancer.enabled = true;
  cfg.balancer.planner.theta = 1.1;
  cfg.balancer.min_heaviest_load = 10.0;
  cfg.balancer.monitor_period = kNanosPerSec / 100;  // ticks at 10 ms
  // Stretch the protocol so a crash reliably lands mid-migration: each
  // control hop takes 5 ms, so one migration spans tens of ms.
  cfg.migration.control_latency = 5 * kNanosPerMilli;
  cfg.checkpoint_period = from_seconds(0.01);
  cfg.metrics.record_pairs = true;
  SimJoinEngine engine(cfg);
  // Carpet-bomb both sides shortly after a monitor tick: whichever
  // instances are mid-migration abort it, the rest just crash.
  for (InstanceId id = 0; id < 4; ++id) {
    engine.schedule_failure(from_seconds(0.012), Side::kR, id);
    engine.schedule_failure(from_seconds(0.022), Side::kS, id);
  }
  const auto rep = engine.run(gen, from_seconds(100));

  EXPECT_EQ(rep.failures, 8u);
  EXPECT_GE(rep.migrations_aborted, 1u);
  EXPECT_LE(rep.results, expected);
  std::set<std::tuple<KeyId, std::uint64_t, std::uint64_t>> seen;
  for (const auto& p : rep.pairs) {
    EXPECT_TRUE(seen.insert({p.key, p.r_seq, p.s_seq}).second)
        << "duplicated join after migration abort";
  }
}

}  // namespace
}  // namespace fastjoin
