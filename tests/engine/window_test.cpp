// Window-based join semantics (paper Section III-E).
#include <gtest/gtest.h>

#include <map>

#include "datagen/trace.hpp"
#include "engine/engine.hpp"

namespace fastjoin {
namespace {

class VectorSource final : public RecordSource {
 public:
  explicit VectorSource(std::vector<Record> records)
      : records_(std::move(records)) {}
  std::optional<Record> next() override {
    if (pos_ >= records_.size()) return std::nullopt;
    return records_[pos_++];
  }

 private:
  std::vector<Record> records_;
  std::size_t pos_ = 0;
};

std::vector<Record> steady_trace(int total, int num_keys, SimTime gap) {
  std::vector<Record> out;
  std::uint64_t r_seq = 0, s_seq = 0;
  for (int i = 0; i < total; ++i) {
    Record rec;
    rec.side = (i % 2 == 0) ? Side::kR : Side::kS;
    rec.key = static_cast<KeyId>(i / 2 % num_keys);
    rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
    rec.ts = i * gap;
    rec.payload = i;
    out.push_back(rec);
  }
  return out;
}

EngineConfig window_config(std::uint32_t subwindows, SimTime len) {
  EngineConfig cfg;
  cfg.instances = 2;
  cfg.balancer.enabled = false;
  cfg.window_subwindows = subwindows;
  cfg.subwindow_len = len;
  cfg.drain = true;
  return cfg;
}

TEST(WindowJoin, EvictsExpiredTuples) {
  // 1 record per ms; sub-window 100 ms, 3 sub-windows -> ~300 ms window.
  auto trace = steady_trace(4000, 8, kNanosPerMilli);
  VectorSource src(trace);
  SimJoinEngine engine(window_config(3, 100 * kNanosPerMilli));
  // Cut the run with the feed (last record at ~4.0 s) so window ticks
  // stop with it; otherwise eviction keeps draining the idle store.
  const auto rep = engine.run(src, from_seconds(4.05));
  EXPECT_GT(rep.evicted, 0u);
  // Store occupancy at the end is bounded by the window, not the trace.
  std::uint64_t stored_now = 0;
  for (InstanceId i = 0; i < 2; ++i) {
    stored_now += engine.instance(Side::kR, i).store().size();
    stored_now += engine.instance(Side::kS, i).store().size();
  }
  // Full history would be 4000; ~3 sub-windows of 100 records/side fit.
  EXPECT_LT(stored_now, 1000u);
  EXPECT_GT(stored_now, 100u);
}

TEST(WindowJoin, FullHistoryNeverEvicts) {
  auto trace = steady_trace(2000, 8, kNanosPerMilli);
  VectorSource src(trace);
  SimJoinEngine engine(window_config(0, 0));
  const auto rep = engine.run(src, from_seconds(100));
  EXPECT_EQ(rep.evicted, 0u);
  EXPECT_EQ(rep.stores, 2000u);
}

TEST(WindowJoin, FewerResultsThanFullHistory) {
  auto trace = steady_trace(4000, 4, kNanosPerMilli);
  auto run = [&](std::uint32_t subwindows) {
    VectorSource src(trace);
    SimJoinEngine engine(
        window_config(subwindows, 50 * kNanosPerMilli));
    return engine.run(src, from_seconds(100));
  };
  const auto windowed = run(4);
  const auto full = run(0);
  EXPECT_GT(full.results, windowed.results);
  EXPECT_GT(windowed.results, 0u);
}

TEST(WindowJoin, WiderWindowMoreResults) {
  auto trace = steady_trace(4000, 4, kNanosPerMilli);
  auto run = [&](std::uint32_t subwindows) {
    VectorSource src(trace);
    SimJoinEngine engine(
        window_config(subwindows, 50 * kNanosPerMilli));
    return engine.run(src, from_seconds(100));
  };
  const auto narrow = run(2);
  const auto wide = run(8);
  EXPECT_GT(wide.results, narrow.results);
}

TEST(WindowJoin, MonitorSeesWindowedLoad) {
  // The load statistics |R_i| must shrink when tuples expire, so the
  // instance's aggregate matches its store exactly.
  auto trace = steady_trace(3000, 8, kNanosPerMilli);
  VectorSource src(trace);
  SimJoinEngine engine(window_config(2, 100 * kNanosPerMilli));
  engine.run(src, from_seconds(100));
  for (InstanceId i = 0; i < 2; ++i) {
    const auto& inst = engine.instance(Side::kR, i);
    EXPECT_EQ(inst.aggregate_load().stored, inst.store().size());
  }
}

TEST(WindowJoin, WorksTogetherWithMigrations) {
  KeyStreamSpec r;
  r.num_keys = 200;
  r.zipf_s = 1.5;
  r.seed = 11;
  KeyStreamSpec s = r;
  s.seed = 12;
  TraceConfig tc;
  tc.total_records = 50'000;
  tc.r_rate = 300'000;
  tc.s_rate = 300'000;
  TraceGenerator gen(r, s, tc);

  auto cfg = window_config(4, 20 * kNanosPerMilli);
  cfg.instances = 4;
  cfg.balancer.enabled = true;
  cfg.balancer.planner.theta = 1.5;
  cfg.balancer.min_heaviest_load = 50.0;
  cfg.balancer.monitor_period = kNanosPerSec / 100;
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, from_seconds(100));
  EXPECT_GT(rep.results, 0u);
  EXPECT_GT(rep.evicted, 0u);
  // Exactly-once cannot be asserted against the naive full-history
  // ground truth under windows; the engine-level invariant checked here
  // is that processing completes and loads stay consistent.
  for (InstanceId i = 0; i < 4; ++i) {
    const auto& inst = engine.instance(Side::kR, i);
    EXPECT_EQ(inst.aggregate_load().stored, inst.store().size());
  }
}

}  // namespace
}  // namespace fastjoin
