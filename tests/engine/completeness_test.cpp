// The paper's third basic requirement: every matching (r, s) pair must
// be joined EXACTLY once — across partitioning strategies and, crucially,
// across live key migrations. These property tests compute the expected
// pair set from first principles and compare it with the engine's
// recorded matches.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/trace.hpp"
#include "engine/engine.hpp"

namespace fastjoin {
namespace {

class VectorSource final : public RecordSource {
 public:
  explicit VectorSource(std::vector<Record> records)
      : records_(std::move(records)) {}
  std::optional<Record> next() override {
    if (pos_ >= records_.size()) return std::nullopt;
    return records_[pos_++];
  }

 private:
  std::vector<Record> records_;
  std::size_t pos_ = 0;
};

std::vector<Record> make_trace(std::uint64_t seed, int total, int num_keys,
                               double zipf) {
  KeyStreamSpec r;
  r.num_keys = num_keys;
  r.zipf_s = zipf;
  r.seed = seed;
  KeyStreamSpec s = r;
  s.seed = seed + 1000;
  TraceConfig tc;
  tc.total_records = total;
  tc.r_rate = 500'000;
  tc.s_rate = 500'000;
  tc.arrivals = ArrivalKind::kPoisson;
  tc.seed = seed;
  TraceGenerator gen(r, s, tc);
  std::vector<Record> out;
  while (auto rec = gen.next()) out.push_back(*rec);
  return out;
}

/// Expected number of join results: every (r, s) pair sharing a key.
std::uint64_t expected_pairs(const std::vector<Record>& trace) {
  std::map<KeyId, std::pair<std::uint64_t, std::uint64_t>> counts;
  for (const auto& rec : trace) {
    auto& [r, s] = counts[rec.key];
    (rec.side == Side::kR ? r : s)++;
  }
  std::uint64_t total = 0;
  for (const auto& [_, rs] : counts) total += rs.first * rs.second;
  return total;
}

/// Run the engine with pair recording and verify the exactly-once
/// property against the ground truth.
void check_exactly_once(const std::vector<Record>& trace,
                        EngineConfig cfg) {
  cfg.metrics.record_pairs = true;
  cfg.drain = true;
  VectorSource src(trace);
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(src, from_seconds(1000));

  ASSERT_EQ(rep.records_in, trace.size());
  const std::uint64_t expected = expected_pairs(trace);
  EXPECT_EQ(rep.results, expected) << "missed or duplicated pairs";
  EXPECT_EQ(rep.pairs.size(), expected);

  // No pair may appear twice (duplicates could hide misses in the sum).
  std::set<std::tuple<KeyId, std::uint64_t, std::uint64_t>> seen;
  for (const auto& p : rep.pairs) {
    EXPECT_TRUE(seen.insert({p.key, p.r_seq, p.s_seq}).second)
        << "duplicate join of pair key=" << p.key << " r=" << p.r_seq
        << " s=" << p.s_seq;
  }
}

EngineConfig base_config(std::uint32_t instances) {
  EngineConfig cfg;
  cfg.instances = instances;
  cfg.balancer.enabled = false;
  return cfg;
}

TEST(Completeness, HashPartitioningExactlyOnce) {
  check_exactly_once(make_trace(1, 4000, 50, 1.0), base_config(4));
}

TEST(Completeness, SingleInstanceDegenerate) {
  check_exactly_once(make_trace(2, 2000, 20, 1.0), base_config(1));
}

TEST(Completeness, ContRandExactlyOnce) {
  auto cfg = base_config(8);
  cfg.strategy = PartitionStrategy::kContRand;
  cfg.contrand_group = 4;
  check_exactly_once(make_trace(3, 4000, 50, 1.2), cfg);
}

TEST(Completeness, RandomBroadcastExactlyOnce) {
  auto cfg = base_config(4);
  cfg.strategy = PartitionStrategy::kRandomBroadcast;
  check_exactly_once(make_trace(4, 2000, 30, 1.0), cfg);
}

TEST(Completeness, WithMigrationsExactlyOnce) {
  auto cfg = base_config(4);
  cfg.balancer.enabled = true;
  cfg.balancer.planner.theta = 1.5;   // trigger aggressively
  cfg.balancer.min_heaviest_load = 10.0;
  cfg.balancer.monitor_period = kNanosPerSec / 200;  // 5 ms
  const auto trace = make_trace(5, 6000, 40, 1.5);
  check_exactly_once(trace, cfg);
}

TEST(Completeness, MigrationsActuallyHappenedInStressConfig) {
  // Guard: the previous test is only meaningful if migrations fire.
  auto cfg = base_config(4);
  cfg.balancer.enabled = true;
  cfg.balancer.planner.theta = 1.5;
  cfg.balancer.min_heaviest_load = 10.0;
  cfg.balancer.monitor_period = kNanosPerSec / 200;
  cfg.drain = true;
  auto trace = make_trace(5, 6000, 40, 1.5);
  VectorSource src(trace);
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(src, from_seconds(1000));
  EXPECT_GT(rep.migrations, 0u);
}

// Exactly-once must hold under many randomized migration schedules:
// different seeds shuffle keys, arrival jitter and migration timing.
class MigrationCompletenessSweep : public ::testing::TestWithParam<int> {};

TEST_P(MigrationCompletenessSweep, ExactlyOnce) {
  const int seed = GetParam();
  auto cfg = base_config(3 + seed % 4);
  cfg.balancer.enabled = true;
  cfg.balancer.planner.theta = 1.2 + 0.3 * (seed % 3);
  cfg.balancer.min_heaviest_load = 5.0;
  cfg.balancer.monitor_period = kNanosPerSec / (100 + 50 * (seed % 5));
  cfg.seed = seed;
  check_exactly_once(make_trace(100 + seed, 5000, 30, 1.4), cfg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationCompletenessSweep,
                         ::testing::Range(0, 10));

TEST(Completeness, SAFitMigrationsExactlyOnce) {
  auto cfg = base_config(4);
  cfg.balancer.enabled = true;
  cfg.balancer.planner.selector = KeySelectorKind::kSAFit;
  cfg.balancer.planner.theta = 1.5;
  cfg.balancer.min_heaviest_load = 10.0;
  cfg.balancer.monitor_period = kNanosPerSec / 200;
  check_exactly_once(make_trace(7, 5000, 40, 1.5), cfg);
}

TEST(Completeness, SlowControlPlaneStillExactlyOnce) {
  // Failure-ish injection: make control messages and transfers crawl so
  // migration phases overlap with lots of data-plane traffic.
  auto cfg = base_config(4);
  cfg.balancer.enabled = true;
  cfg.balancer.planner.theta = 1.3;
  cfg.balancer.min_heaviest_load = 10.0;
  cfg.balancer.monitor_period = kNanosPerSec / 100;
  cfg.migration.control_latency = 20 * kNanosPerMilli;   // brutal 20 ms
  cfg.migration.link_bytes_per_sec = 1e6;                // 1 MB/s
  check_exactly_once(make_trace(8, 5000, 30, 1.5), cfg);
}

}  // namespace
}  // namespace fastjoin
