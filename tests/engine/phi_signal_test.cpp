// PhiSignal variants: the load model's phi can be queue length (the
// paper's literal definition), the decayed incoming-rate counter, or
// the hybrid of both (default).
#include <gtest/gtest.h>

#include "engine/join_instance.hpp"

namespace fastjoin {
namespace {

Record rec(Side side, KeyId key, std::uint64_t seq, SimTime ts) {
  Record r;
  r.side = side;
  r.key = key;
  r.seq = seq;
  r.ts = ts;
  return r;
}

struct Fixture {
  Simulator sim;
  CostModel cost;

  std::unique_ptr<JoinInstance> make(PhiSignal phi) {
    return std::make_unique<JoinInstance>(sim, 0, Side::kR, cost, 0,
                                          JoinInstance::Hooks{}, phi);
  }
};

TEST(PhiSignal, QueueOnlyCountsBacklogOnly) {
  Fixture f;
  auto inst = f.make(PhiSignal::kQueueOnly);
  f.sim.schedule_at(0, [&] {
    inst->pause();
    inst->enqueue(rec(Side::kS, 1, 0, 0));
    inst->enqueue(rec(Side::kS, 1, 1, 1));
    EXPECT_EQ(inst->aggregate_load().queued, 2u);
    inst->resume();
  });
  f.sim.run();
  // Drained: queue empty, and the rate window is invisible to this mode.
  EXPECT_EQ(inst->aggregate_load().queued, 0u);
}

TEST(PhiSignal, RateOnlyCountsServedProbes) {
  Fixture f;
  auto inst = f.make(PhiSignal::kRateOnly);
  f.sim.schedule_at(0, [&] {
    inst->pause();
    inst->enqueue(rec(Side::kS, 1, 0, 0));
    inst->enqueue(rec(Side::kS, 1, 1, 1));
    // Backlog is invisible to this mode.
    EXPECT_EQ(inst->aggregate_load().queued, 0u);
    inst->resume();
  });
  f.sim.run();
  EXPECT_EQ(inst->aggregate_load().queued, 2u);
  inst->decay_probe_window();
  EXPECT_EQ(inst->aggregate_load().queued, 1u);
}

TEST(PhiSignal, HybridIsSum) {
  Fixture f;
  auto inst = f.make(PhiSignal::kHybrid);
  f.sim.schedule_at(0, [&] {
    inst->enqueue(rec(Side::kS, 1, 0, 0));  // will be served
  });
  f.sim.schedule_at(10'000, [&] {
    inst->pause();
    inst->enqueue(rec(Side::kS, 1, 1, 10'000));  // stays queued
    EXPECT_EQ(inst->aggregate_load().queued, 2u);  // 1 served + 1 pending
    inst->resume();
  });
  f.sim.run();
}

TEST(PhiSignal, KeyLoadsRespectMode) {
  Fixture f;
  auto queue_only = f.make(PhiSignal::kQueueOnly);
  auto rate_only = f.make(PhiSignal::kRateOnly);
  f.sim.schedule_at(0, [&] {
    queue_only->enqueue(rec(Side::kS, 7, 0, 0));
    rate_only->enqueue(rec(Side::kS, 7, 0, 0));
  });
  f.sim.run();
  // Both served. QueueOnly sees nothing; RateOnly sees the window.
  EXPECT_TRUE(queue_only->key_loads().empty());
  const auto kl = rate_only->key_loads();
  ASSERT_EQ(kl.size(), 1u);
  EXPECT_EQ(kl[0].key, 7u);
  EXPECT_EQ(kl[0].queued, 1u);
}

}  // namespace
}  // namespace fastjoin
