#include "engine/cost_model.hpp"

#include <gtest/gtest.h>

namespace fastjoin {
namespace {

TEST(CostModel, HashIndexScalesWithMatches) {
  CostModel cm;
  cm.kind = ProbeCostKind::kHashIndex;
  cm.probe_base = 1000;
  cm.probe_per_match = 100.0;
  EXPECT_EQ(cm.probe_time(50'000, 0), 1000);  // store size irrelevant
  EXPECT_EQ(cm.probe_time(50'000, 10), 2000);
  EXPECT_EQ(cm.probe_time(1, 10), 2000);
}

TEST(CostModel, NestedLoopScalesWithStore) {
  CostModel cm;
  cm.kind = ProbeCostKind::kNestedLoop;
  cm.probe_base = 1000;
  cm.probe_per_scan = 2.0;
  EXPECT_EQ(cm.probe_time(500, 0), 2000);
  EXPECT_EQ(cm.probe_time(500, 499), 2000);  // matches irrelevant
}

TEST(CostModel, MissCostApplies) {
  CostModel cm;
  cm.probe_base = 1000;
  cm.probe_miss_cost = 100;
  cm.probe_per_match = 50.0;
  EXPECT_EQ(cm.probe_time(10, 0), 100);   // miss: cheap path
  EXPECT_EQ(cm.probe_time(10, 2), 1100);  // hit: full base + matches
}

TEST(CostModel, MissCostDefaultsToBase) {
  CostModel cm;
  cm.probe_base = 777;
  cm.probe_per_match = 0.0;
  cm.probe_miss_cost = -1;
  EXPECT_EQ(cm.probe_time(10, 0), 777);
}

TEST(CostModel, MatchCapBoundsServiceTime) {
  CostModel cm;
  cm.probe_base = 0;
  cm.probe_per_match = 10.0;
  cm.probe_match_cap = 100;
  EXPECT_EQ(cm.probe_time(0, 50), 500);
  EXPECT_EQ(cm.probe_time(0, 100), 1000);
  EXPECT_EQ(cm.probe_time(0, 1'000'000), 1000);  // capped
  cm.probe_match_cap = 0;
  EXPECT_EQ(cm.probe_time(0, 1'000'000), 10'000'000);  // uncapped
}

TEST(CostModel, StoreTimeIsFlat) {
  CostModel cm;
  cm.store_cost = 4242;
  EXPECT_EQ(cm.store_time(), 4242);
}

TEST(MigrationCosts, SelectionTimeScalesWithKeys) {
  MigrationCosts mc;
  mc.selection_base = 1000;
  mc.selection_per_key = 10.0;
  EXPECT_EQ(mc.selection_time(0), 1000);
  EXPECT_EQ(mc.selection_time(100), 2000);
}

TEST(MigrationCosts, TransferTimeMatchesBandwidth) {
  MigrationCosts mc;
  mc.tuple_bytes = 100;
  mc.link_bytes_per_sec = 1e8;  // 100 MB/s
  // 1000 tuples * 100 B = 100 kB -> 1 ms.
  EXPECT_EQ(mc.transfer_time(1000), kNanosPerMilli);
  mc.link_bytes_per_sec = 0;  // infinite
  EXPECT_EQ(mc.transfer_time(1000), 0);
}

}  // namespace
}  // namespace fastjoin
