#include "engine/join_store.hpp"

#include <gtest/gtest.h>

namespace fastjoin {
namespace {

StoredTuple tuple(std::uint64_t seq, SimTime ts = 0) {
  StoredTuple st;
  st.seq = seq;
  st.ts = ts;
  st.payload = seq * 10;
  return st;
}

TEST(JoinStore, InsertAndFind) {
  JoinStore store;
  store.insert(5, tuple(1));
  store.insert(5, tuple(2));
  store.insert(7, tuple(3));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.count_for(5), 2u);
  EXPECT_EQ(store.count_for(7), 1u);
  EXPECT_EQ(store.count_for(99), 0u);
  ASSERT_NE(store.find(5), nullptr);
  EXPECT_EQ(store.find(5)->size(), 2u);
  EXPECT_EQ(store.find(99), nullptr);
}

TEST(JoinStore, PreservesInsertionOrderPerKey) {
  JoinStore store;
  for (std::uint64_t i = 0; i < 10; ++i) store.insert(1, tuple(i, i));
  const auto* bucket = store.find(1);
  ASSERT_NE(bucket, nullptr);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ((*bucket)[i].seq, i);
}

TEST(JoinStore, KeysSnapshot) {
  JoinStore store;
  store.insert(1, tuple(1));
  store.insert(2, tuple(2));
  store.insert(1, tuple(3));
  auto keys = store.keys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<KeyId>{1, 2}));
  EXPECT_EQ(store.num_keys(), 2u);
}

TEST(JoinStore, ExtractKeyRemovesAll) {
  JoinStore store;
  store.insert(1, tuple(1));
  store.insert(1, tuple(2));
  store.insert(2, tuple(3));
  const auto extracted = store.extract_key(1);
  EXPECT_EQ(extracted.size(), 2u);
  EXPECT_EQ(extracted[0].seq, 1u);
  EXPECT_EQ(extracted[1].seq, 2u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find(1), nullptr);
  EXPECT_TRUE(store.extract_key(1).empty());  // second extract is empty
}

TEST(JoinStore, FullHistoryNeverEvicts) {
  JoinStore store(0);
  for (int i = 0; i < 100; ++i) {
    store.insert(static_cast<KeyId>(i % 3), tuple(i));
    if (i % 10 == 0) EXPECT_EQ(store.advance_subwindow(), 0u);
  }
  EXPECT_EQ(store.size(), 100u);
}

TEST(JoinStore, WindowEvictsOldestSubwindow) {
  JoinStore store(/*max_subwindows=*/3);
  // Sub-window 0: 2 tuples; 1: 3 tuples; 2: 1 tuple.
  store.insert(1, tuple(0));
  store.insert(2, tuple(1));
  EXPECT_EQ(store.advance_subwindow(), 0u);  // ring not yet full
  store.insert(1, tuple(2));
  store.insert(1, tuple(3));
  store.insert(3, tuple(4));
  EXPECT_EQ(store.advance_subwindow(), 0u);
  store.insert(2, tuple(5));
  EXPECT_EQ(store.size(), 6u);
  // Advancing now evicts sub-window 0 (2 tuples).
  EXPECT_EQ(store.advance_subwindow(), 2u);
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.count_for(1), 2u);  // seqs 2, 3 remain
  EXPECT_EQ(store.count_for(2), 1u);  // seq 5 remains
  EXPECT_EQ(store.count_for(3), 1u);
}

TEST(JoinStore, WindowEvictionEmptiesEventually) {
  JoinStore store(2);
  store.insert(1, tuple(0));
  store.advance_subwindow();
  store.advance_subwindow();  // evicts sw 0
  store.advance_subwindow();  // evicts sw 1 (empty)
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.find(1), nullptr);
}

TEST(JoinStore, EvictionToleratesMigratedKeys) {
  JoinStore store(2);
  store.insert(1, tuple(0));
  store.insert(2, tuple(1));
  store.extract_key(1);  // migrated away before expiry
  store.advance_subwindow();
  EXPECT_EQ(store.advance_subwindow(), 1u);  // only key 2 evicted
  EXPECT_EQ(store.size(), 0u);
}

TEST(JoinStore, SubwindowTagging) {
  JoinStore store(4);
  store.insert(1, tuple(0));
  store.advance_subwindow();
  store.insert(1, tuple(1));
  const auto* bucket = store.find(1);
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ((*bucket)[0].subwindow, 0u);
  EXPECT_EQ((*bucket)[1].subwindow, 1u);
}

// --- extract_key vs sub-window eviction: the prefix-pop invariant. ----
// extract_key removes whole keys but leaves their subwindow_log_
// entries stale; eviction must pop a bucket's front only when that
// front is actually tagged with the evicted sub-window.

TEST(JoinStore, ReinsertAfterExtractIsNotEvictedByStaleLogEntries) {
  JoinStore store(3);
  store.insert(1, tuple(0));  // sub-window 0
  store.advance_subwindow();
  // Key 1 migrates away (its sw-0 log entry goes stale), then migrates
  // back: the re-inserted tuple belongs to sub-window 1.
  auto out = store.extract_key(1);
  ASSERT_EQ(out.size(), 1u);
  store.insert(1, out[0]);  // re-merge, tagged sw 1
  // Advance until sw 0 expires. The stale log entry names key 1, but
  // the bucket front is tagged sw 1 — it must survive.
  store.advance_subwindow();
  EXPECT_EQ(store.advance_subwindow(), 0u);  // evicts sw 0: nothing
  EXPECT_EQ(store.count_for(1), 1u);
  // The re-inserted tuple expires with ITS sub-window, not its
  // original one.
  EXPECT_EQ(store.advance_subwindow(), 1u);  // evicts sw 1
  EXPECT_EQ(store.count_for(1), 0u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(JoinStore, StaleLogEntryPopsAtMostOnePrefixTuple) {
  JoinStore store(4);
  // Two sw-0 tuples of key 9, both extracted, then two fresh sw-1
  // tuples re-inserted (a migrate-away-and-back round trip).
  store.insert(9, tuple(0));
  store.insert(9, tuple(1));
  store.advance_subwindow();
  store.extract_key(9);
  store.insert(9, tuple(2));
  store.insert(9, tuple(3));
  // sw 0 expiry walks two stale log entries for key 9; neither may pop
  // the sw-1 tuples.
  store.advance_subwindow();
  store.advance_subwindow();
  EXPECT_EQ(store.advance_subwindow(), 0u);  // evict sw 0
  EXPECT_EQ(store.count_for(9), 2u);
  EXPECT_EQ(store.advance_subwindow(), 2u);  // evict sw 1
  EXPECT_EQ(store.count_for(9), 0u);
}

TEST(JoinStore, ExtractBetweenInsertAndEvictionKeepsSizeConsistent) {
  JoinStore store(2);
  // Interleave inserts, extraction and eviction across sub-windows and
  // check size() stays exactly right at every step.
  store.insert(1, tuple(0));
  store.insert(2, tuple(1));
  store.advance_subwindow();  // sw -> 1
  store.insert(1, tuple(2));
  store.insert(3, tuple(3));
  EXPECT_EQ(store.size(), 4u);
  const auto got = store.extract_key(1);  // one sw-0 + one sw-1 tuple
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(store.size(), 2u);
  // Evicting sw 0 must remove only key 2's tuple (key 1 is gone).
  EXPECT_EQ(store.advance_subwindow(), 1u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.count_for(3), 1u);
  // And sw 1's eviction removes key 3's tuple; key 1's extracted sw-1
  // tuple must not be double-counted.
  EXPECT_EQ(store.advance_subwindow(), 1u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(JoinStore, ExtractedTuplesKeepTheirSubwindowTags) {
  JoinStore store(3);
  store.insert(4, tuple(0));
  store.advance_subwindow();
  store.insert(4, tuple(1));
  const auto out = store.extract_key(4);
  ASSERT_EQ(out.size(), 2u);
  // Migration re-merges these at the target; the tags travel with them
  // (the target's insert() re-tags with ITS current sub-window, which
  // is the documented behavior — the batch is "fresh" at the target).
  EXPECT_EQ(out[0].subwindow, 0u);
  EXPECT_EQ(out[1].subwindow, 1u);
}

TEST(JoinStore, LargeChurnStaysConsistent) {
  JoinStore store(5);
  std::uint64_t inserted = 0, evicted = 0;
  for (int sw = 0; sw < 50; ++sw) {
    for (int i = 0; i < 20; ++i) {
      store.insert(static_cast<KeyId>(i % 7), tuple(inserted++));
    }
    evicted += store.advance_subwindow();
  }
  EXPECT_EQ(store.size(), inserted - evicted);
  // Steady state: 4 closed sub-windows x 20 tuples survive (the 5th live
  // sub-window was just opened by the final advance and is still empty).
  EXPECT_EQ(store.size(), 80u);
}

}  // namespace
}  // namespace fastjoin
