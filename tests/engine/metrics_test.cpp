#include "engine/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fastjoin {
namespace {

TEST(Metrics, ThroughputPerSecond) {
  MetricsConfig cfg;
  MetricsHub hub(cfg, 4);
  hub.on_results(0, 100);
  hub.on_results(kNanosPerSec / 2, 200);
  hub.on_results(kNanosPerSec + 1, 50);
  hub.finish();
  const auto pts = hub.throughput().series().points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].v, 300.0);
  EXPECT_DOUBLE_EQ(pts[1].v, 50.0);
}

TEST(Metrics, LatencySeriesAveragesPerWindow) {
  MetricsConfig cfg;
  MetricsHub hub(cfg, 4);
  hub.on_probe_latency(0, 1 * kNanosPerMilli);
  hub.on_probe_latency(100, 3 * kNanosPerMilli);
  hub.on_probe_latency(kNanosPerSec + 1, 10 * kNanosPerMilli);
  hub.finish();
  const auto pts = hub.latency_series().points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].v, 2.0);   // mean of 1ms and 3ms, in ms
  EXPECT_DOUBLE_EQ(pts[1].v, 10.0);
}

TEST(Metrics, WarmupExcludedFromMeans) {
  MetricsConfig cfg;
  cfg.warmup = 2 * kNanosPerSec;
  MetricsHub hub(cfg, 4);
  hub.on_results(0, 1'000'000);            // warmup window, huge
  hub.on_results(2 * kNanosPerSec + 1, 100);
  hub.on_results(3 * kNanosPerSec + 1, 100);
  hub.finish();
  EXPECT_NEAR(hub.mean_throughput(), 100.0, 35.0);
}

TEST(Metrics, PairsOnlyWhenEnabled) {
  MetricsConfig off;
  MetricsHub hub_off(off, 2);
  hub_off.on_match_pair({1, 2, 3});
  EXPECT_TRUE(hub_off.pairs().empty());

  MetricsConfig on;
  on.record_pairs = true;
  MetricsHub hub_on(on, 2);
  hub_on.on_match_pair({1, 2, 3});
  ASSERT_EQ(hub_on.pairs().size(), 1u);
  EXPECT_EQ(hub_on.pairs()[0].key, 1u);
}

TEST(Metrics, InstanceLoadsOnlyWhenEnabled) {
  MetricsConfig off;
  MetricsHub hub_off(off, 2);
  hub_off.record_instance_load(0, Side::kR, 0, 5.0);
  EXPECT_TRUE(hub_off.instance_load_series(Side::kR).empty());

  MetricsConfig on;
  on.record_instance_loads = true;
  MetricsHub hub_on(on, 2);
  hub_on.record_instance_load(0, Side::kR, 0, 5.0);
  hub_on.record_instance_load(0, Side::kR, 1, 7.0);
  const auto& series = hub_on.instance_load_series(Side::kR);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].last(), 5.0);
  EXPECT_DOUBLE_EQ(series[1].last(), 7.0);
}

TEST(Metrics, LiSeriesPerGroup) {
  MetricsConfig cfg;
  MetricsHub hub(cfg, 2);
  hub.record_li(0, Side::kR, 2.5);
  hub.record_li(0, Side::kS, 1.5);
  EXPECT_DOUBLE_EQ(hub.li_series(Side::kR).last(), 2.5);
  EXPECT_DOUBLE_EQ(hub.li_series(Side::kS).last(), 1.5);
}

TEST(Metrics, MigrationLog) {
  MetricsConfig cfg;
  MetricsHub hub(cfg, 2);
  MigrationEvent ev;
  ev.src = 1;
  ev.dst = 0;
  ev.keys_moved = 3;
  hub.log_migration(ev);
  ASSERT_EQ(hub.migrations().size(), 1u);
  EXPECT_EQ(hub.migrations()[0].keys_moved, 3u);
}

TEST(Metrics, MigrationTraceIsChromeTraceJson) {
  MetricsConfig cfg;
  MetricsHub hub(cfg, 2);
  MigrationEvent ev;
  ev.triggered_at = 2'000'000;   // 2 ms in SimTime ns
  ev.completed_at = 5'000'000;
  ev.group = Side::kS;
  ev.src = 1;
  ev.dst = 0;
  ev.keys_moved = 4;
  ev.tuples_moved = 99;
  hub.log_migration(ev);

  std::ostringstream os;
  hub.write_migration_trace(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"migrate\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(out.find("\"ts\": 2000"), std::string::npos);   // us
  EXPECT_NE(out.find("\"dur\": 3000"), std::string::npos);
  EXPECT_NE(out.find("\"tuples_moved\": 99"), std::string::npos);

  // The free function renders any migration log (benches pass
  // RunReport::migration_log).
  std::ostringstream os2;
  write_migration_trace(os2, {ev, ev});
  EXPECT_NE(os2.str().find("\"src\": 1"), std::string::npos);
}

TEST(Metrics, LatencyHistogramPercentiles) {
  MetricsConfig cfg;
  MetricsHub hub(cfg, 2);
  for (int i = 1; i <= 1000; ++i) {
    hub.on_probe_latency(0, i * 1000);
  }
  hub.finish();
  const double p50 = hub.latency_hist().value_at_percentile(50);
  EXPECT_NEAR(p50, 500'000, 50'000);
}

}  // namespace
}  // namespace fastjoin
