#include "engine/matrix_engine.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/keygen.hpp"

namespace fastjoin {
namespace {

class VectorSource final : public RecordSource {
 public:
  explicit VectorSource(std::vector<Record> records)
      : records_(std::move(records)) {}
  std::optional<Record> next() override {
    if (pos_ >= records_.size()) return std::nullopt;
    return records_[pos_++];
  }

 private:
  std::vector<Record> records_;
  std::size_t pos_ = 0;
};

std::vector<Record> make_trace(std::uint64_t seed, int total,
                               int num_keys, double zipf) {
  KeyStreamSpec spec;
  spec.num_keys = num_keys;
  spec.zipf_s = zipf;
  spec.seed = seed;
  KeyGenerator gen(spec);
  Xoshiro256 rng(seed ^ 0x77);
  std::vector<Record> out;
  std::uint64_t r_seq = 0, s_seq = 0;
  for (int i = 0; i < total; ++i) {
    Record rec;
    rec.side = rng.next_below(2) ? Side::kS : Side::kR;
    rec.key = gen();
    rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
    rec.ts = i * 1000;
    out.push_back(rec);
  }
  return out;
}

std::uint64_t expected_pairs(const std::vector<Record>& trace) {
  std::map<KeyId, std::pair<std::uint64_t, std::uint64_t>> counts;
  for (const auto& rec : trace) {
    auto& [r, s] = counts[rec.key];
    (rec.side == Side::kR ? r : s)++;
  }
  std::uint64_t total = 0;
  for (const auto& [_, rs] : counts) total += rs.first * rs.second;
  return total;
}

MatrixConfig small_config(std::uint32_t rows, std::uint32_t cols) {
  MatrixConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.drain = true;
  return cfg;
}

TEST(MatrixEngine, ExactlyOnceJoining) {
  const auto trace = make_trace(1, 4000, 50, 1.2);
  VectorSource src(trace);
  MatrixJoinEngine engine(small_config(3, 4));

  std::set<std::tuple<KeyId, std::uint64_t, std::uint64_t>> seen;
  std::size_t dups = 0;
  engine.set_on_match([&](const MatchPair& p) {
    if (!seen.insert({p.key, p.r_seq, p.s_seq}).second) ++dups;
  });

  const auto rep = engine.run(src, from_seconds(1000));
  EXPECT_EQ(dups, 0u);
  EXPECT_EQ(seen.size(), expected_pairs(trace));
  EXPECT_EQ(rep.results, expected_pairs(trace));
}

TEST(MatrixEngine, ReplicationFactorMatchesGeometry) {
  // R tuples are stored `cols` times, S tuples `rows` times.
  const int n = 2000;
  const auto trace = make_trace(2, n, 20, 1.0);
  std::uint64_t r_count = 0, s_count = 0;
  for (const auto& rec : trace) {
    (rec.side == Side::kR ? r_count : s_count)++;
  }
  VectorSource src(trace);
  MatrixJoinEngine engine(small_config(4, 2));
  const auto rep = engine.run(src, from_seconds(1000));
  EXPECT_EQ(rep.tuples_stored, r_count * 2 + s_count * 4);
  EXPECT_GT(rep.replication_factor, 1.9);
}

TEST(MatrixEngine, BalancedRegardlessOfSkew) {
  // The matrix's selling point: single-key skew does not concentrate on
  // one cell, because rows/columns are chosen randomly per tuple.
  auto trace = make_trace(3, 6000, 5, 2.0);  // brutal skew
  VectorSource src(trace);
  MatrixJoinEngine engine(small_config(4, 4));
  const auto rep = engine.run(src, from_seconds(1000));
  EXPECT_EQ(rep.results, expected_pairs(trace));
  EXPECT_GT(rep.results, 0u);
}

TEST(MatrixEngine, SingleCellDegenerate) {
  const auto trace = make_trace(4, 1000, 10, 1.0);
  VectorSource src(trace);
  MatrixJoinEngine engine(small_config(1, 1));
  const auto rep = engine.run(src, from_seconds(1000));
  EXPECT_EQ(rep.results, expected_pairs(trace));
  EXPECT_EQ(rep.tuples_stored, trace.size());  // no replication at 1x1
}

TEST(MatrixEngine, CellOpsCountReplicatedDeliveries) {
  const int n = 500;
  const auto trace = make_trace(5, n, 10, 0.5);
  std::uint64_t r_count = 0, s_count = 0;
  for (const auto& rec : trace) {
    (rec.side == Side::kR ? r_count : s_count)++;
  }
  VectorSource src(trace);
  MatrixJoinEngine engine(small_config(2, 3));
  const auto rep = engine.run(src, from_seconds(1000));
  EXPECT_EQ(rep.cell_ops, r_count * 3 + s_count * 2);
  EXPECT_EQ(rep.records_in, static_cast<std::uint64_t>(n));
}

TEST(MatrixEngine, ThroughputAndLatencyPopulated) {
  auto cfg = small_config(2, 2);
  cfg.cost.probe_base = 10'000;
  const auto trace = make_trace(6, 5000, 30, 1.0);
  VectorSource src(trace);
  MatrixJoinEngine engine(cfg);
  const auto rep = engine.run(src, from_seconds(1000));
  EXPECT_GT(rep.mean_throughput, 0.0);
  EXPECT_GT(rep.mean_latency_ms, 0.0);
  EXPECT_GE(rep.p99_latency_ms, 0.0);
}

}  // namespace
}  // namespace fastjoin
