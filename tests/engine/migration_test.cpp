// Migration-protocol behaviour at the engine level: LI actually drops,
// routing overrides land, tuples physically move, and the monitor's
// in-flight guard prevents overlapping migrations per group.
#include <gtest/gtest.h>

#include <map>

#include "datagen/trace.hpp"
#include "engine/engine.hpp"

namespace fastjoin {
namespace {

TraceConfig skew_trace_config(std::uint64_t total) {
  TraceConfig tc;
  tc.total_records = total;
  tc.r_rate = 400'000;
  tc.s_rate = 400'000;
  return tc;
}

KeyStreamSpec skew_spec(std::uint64_t seed, double s = 1.5) {
  KeyStreamSpec spec;
  spec.num_keys = 500;
  spec.zipf_s = s;
  spec.seed = seed;
  return spec;
}

EngineConfig fastjoin_config() {
  EngineConfig cfg;
  cfg.instances = 8;
  cfg.balancer.enabled = true;
  cfg.balancer.planner.theta = 2.0;
  cfg.balancer.min_heaviest_load = 100.0;
  cfg.balancer.monitor_period = kNanosPerSec / 100;
  cfg.drain = true;
  return cfg;
}

TEST(Migration, ReducesImbalanceVersusBaseline) {
  auto run = [&](bool balancer) {
    auto cfg = fastjoin_config();
    cfg.balancer.enabled = balancer;
    TraceGenerator gen(skew_spec(1), skew_spec(1001),
                       skew_trace_config(80'000));
    SimJoinEngine engine(cfg);
    return engine.run(gen, from_seconds(100));
  };
  const auto with = run(true);
  const auto without = run(false);
  EXPECT_GT(with.migrations, 0u);
  EXPECT_LT(with.mean_li, without.mean_li);
}

TEST(Migration, ImprovesLatencyUnderSkew) {
  // Balanceable skew: the hottest key's share (~8% at s = 1.0 over
  // 5000 keys) is below one instance's fair share, so migrating whole
  // keys can actually level the load (a single unsplittable mega-key
  // could not be helped and would make this assertion meaningless).
  auto run = [&](bool balancer) {
    auto cfg = fastjoin_config();
    cfg.balancer.enabled = balancer;
    KeyStreamSpec r = skew_spec(2, 1.0);
    r.num_keys = 5000;
    KeyStreamSpec s = skew_spec(1002, 1.0);
    s.num_keys = 5000;
    TraceConfig tc = skew_trace_config(120'000);
    tc.r_rate = 60'000;  // seconds-long feed instead of a batch dump
    tc.s_rate = 60'000;
    TraceGenerator gen(r, s, tc);
    SimJoinEngine engine(cfg);
    return engine.run(gen, from_seconds(100));
  };
  const auto with = run(true);
  const auto without = run(false);
  EXPECT_GT(with.migrations, 0u);
  EXPECT_LT(with.mean_latency_ms, without.mean_latency_ms);
}

TEST(Migration, InstallsRoutingOverrides) {
  auto cfg = fastjoin_config();
  TraceGenerator gen(skew_spec(3), skew_spec(1003),
                     skew_trace_config(60'000));
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, from_seconds(100));
  ASSERT_GT(rep.migrations, 0u);
  const auto total_overrides = engine.dispatcher().overrides(Side::kR) +
                               engine.dispatcher().overrides(Side::kS);
  EXPECT_GT(total_overrides, 0u);
}

TEST(Migration, EventsAreWellFormed) {
  auto cfg = fastjoin_config();
  TraceGenerator gen(skew_spec(4), skew_spec(1004),
                     skew_trace_config(60'000));
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, from_seconds(100));
  ASSERT_GT(rep.migration_log.size(), 0u);
  for (const auto& ev : rep.migration_log) {
    EXPECT_GT(ev.completed_at, ev.triggered_at);
    EXPECT_NE(ev.src, ev.dst);
    EXPECT_GT(ev.keys_moved, 0u);
    EXPECT_GT(ev.li_before, cfg.balancer.planner.theta);
  }
}

TEST(Migration, PerGroupMigrationsNeverOverlap) {
  auto cfg = fastjoin_config();
  cfg.balancer.planner.theta = 1.3;
  cfg.balancer.min_heaviest_load = 10.0;
  TraceGenerator gen(skew_spec(5), skew_spec(1005),
                     skew_trace_config(60'000));
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, from_seconds(100));
  ASSERT_GT(rep.migration_log.size(), 1u);
  SimTime last_end[2] = {-1, -1};
  for (const auto& ev : rep.migration_log) {
    const int g = static_cast<int>(ev.group);
    EXPECT_GE(ev.triggered_at, last_end[g])
        << "overlapping migrations in group " << g;
    last_end[g] = ev.completed_at;
  }
}

TEST(Migration, HighThresholdNeverTriggers) {
  auto cfg = fastjoin_config();
  cfg.balancer.planner.theta = 1e12;
  TraceGenerator gen(skew_spec(6), skew_spec(1006),
                     skew_trace_config(40'000));
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, from_seconds(100));
  EXPECT_EQ(rep.migrations, 0u);
}

TEST(Migration, MinLoadGuardBlocksIdleChurn) {
  auto cfg = fastjoin_config();
  cfg.balancer.planner.theta = 1.01;     // hair trigger
  cfg.balancer.min_heaviest_load = 1e15; // but nothing is ever that hot
  TraceGenerator gen(skew_spec(7), skew_spec(1007),
                     skew_trace_config(40'000));
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, from_seconds(100));
  EXPECT_EQ(rep.migrations, 0u);
}

TEST(Migration, ConcurrentPairsDisjointAndComplete) {
  auto cfg = fastjoin_config();
  cfg.balancer.planner.theta = 1.3;
  cfg.balancer.min_heaviest_load = 10.0;
  cfg.balancer.max_concurrent_migrations = 4;
  TraceGenerator gen(skew_spec(9), skew_spec(1009),
                     skew_trace_config(60'000));
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, from_seconds(100));
  ASSERT_GT(rep.migrations, 0u);
  // Overlapping migrations in a group must use disjoint instances.
  for (std::size_t i = 0; i < rep.migration_log.size(); ++i) {
    for (std::size_t j = i + 1; j < rep.migration_log.size(); ++j) {
      const auto& a = rep.migration_log[i];
      const auto& b = rep.migration_log[j];
      if (a.group != b.group) continue;
      const bool overlap = a.triggered_at < b.completed_at &&
                           b.triggered_at < a.completed_at;
      if (overlap) {
        EXPECT_NE(a.src, b.src);
        EXPECT_NE(a.src, b.dst);
        EXPECT_NE(a.dst, b.src);
        EXPECT_NE(a.dst, b.dst);
      }
    }
  }
}

TEST(Migration, ConcurrentPairsExactlyOnce) {
  auto cfg = fastjoin_config();
  cfg.instances = 6;
  cfg.balancer.planner.theta = 1.2;
  cfg.balancer.min_heaviest_load = 10.0;
  cfg.balancer.max_concurrent_migrations = 3;
  cfg.metrics.record_pairs = true;

  KeyStreamSpec r = skew_spec(10), s = skew_spec(1010);
  TraceConfig tc = skew_trace_config(8'000);
  std::map<KeyId, std::pair<std::uint64_t, std::uint64_t>> counts;
  {
    TraceGenerator gen(r, s, tc);
    while (auto x = gen.next()) {
      auto& [cr, cs] = counts[x->key];
      (x->side == Side::kR ? cr : cs)++;
    }
  }
  std::uint64_t expected = 0;
  for (const auto& [_, rs] : counts) expected += rs.first * rs.second;

  TraceGenerator gen(r, s, tc);
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, from_seconds(100));
  EXPECT_EQ(rep.results, expected);
}

TEST(Migration, TuplesPhysicallyMove) {
  auto cfg = fastjoin_config();
  TraceGenerator gen(skew_spec(8), skew_spec(1008),
                     skew_trace_config(60'000));
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, from_seconds(100));
  ASSERT_GT(rep.migrations, 0u);
  EXPECT_GT(rep.tuples_migrated, 0u);
  std::uint64_t logged = 0;
  for (const auto& ev : rep.migration_log) logged += ev.tuples_moved;
  EXPECT_EQ(logged, rep.tuples_migrated);
}

}  // namespace
}  // namespace fastjoin
