#include "engine/join_instance.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fastjoin {
namespace {

Record rec(Side side, KeyId key, std::uint64_t seq, SimTime ts) {
  Record r;
  r.side = side;
  r.key = key;
  r.seq = seq;
  r.ts = ts;
  r.payload = seq;
  return r;
}

struct Fixture {
  Simulator sim;
  CostModel cost;
  std::vector<std::pair<std::uint64_t, SimTime>> probe_results;
  std::vector<MatchPair> matches;

  std::unique_ptr<JoinInstance> make(Side store_side,
                                     bool record_matches = false,
                                     std::uint32_t subwindows = 0) {
    JoinInstance::Hooks hooks;
    hooks.on_probe_done = [this](SimTime, std::uint64_t m, SimTime lat) {
      probe_results.push_back({m, lat});
    };
    if (record_matches) {
      hooks.on_match = [this](const MatchPair& p) { matches.push_back(p); };
    }
    return std::make_unique<JoinInstance>(sim, 0, store_side, cost,
                                          subwindows, hooks);
  }
};

TEST(JoinInstance, StoreThenProbeMatches) {
  Fixture f;
  auto inst = f.make(Side::kR);
  f.sim.schedule_at(0, [&] {
    inst->enqueue(rec(Side::kR, 1, 0, 0));   // store
    inst->enqueue(rec(Side::kS, 1, 0, 10));  // probe, same key
  });
  f.sim.run();
  ASSERT_EQ(f.probe_results.size(), 1u);
  EXPECT_EQ(f.probe_results[0].first, 1u);  // one match
  EXPECT_EQ(inst->results_emitted(), 1u);
  EXPECT_EQ(inst->stores_done(), 1u);
  EXPECT_EQ(inst->probes_done(), 1u);
}

TEST(JoinInstance, ProbeMissesDifferentKey) {
  Fixture f;
  auto inst = f.make(Side::kR);
  f.sim.schedule_at(0, [&] {
    inst->enqueue(rec(Side::kR, 1, 0, 0));
    inst->enqueue(rec(Side::kS, 2, 0, 10));
  });
  f.sim.run();
  ASSERT_EQ(f.probe_results.size(), 1u);
  EXPECT_EQ(f.probe_results[0].first, 0u);
}

TEST(JoinInstance, ProbeBeforeStoreDoesNotMatch) {
  // FIFO: a probe enqueued before the store of the same key sees an
  // empty bucket — the pair will instead join on the other biclique side.
  Fixture f;
  auto inst = f.make(Side::kR);
  f.sim.schedule_at(0, [&] {
    inst->enqueue(rec(Side::kS, 1, 0, 0));
    inst->enqueue(rec(Side::kR, 1, 0, 10));
  });
  f.sim.run();
  ASSERT_EQ(f.probe_results.size(), 1u);
  EXPECT_EQ(f.probe_results[0].first, 0u);
}

TEST(JoinInstance, OrderingRuleExcludesNonPreceding) {
  // A stored tuple with identical (ts) but "later" total order must not
  // match: stored S at ts=5 vs probing R at ts=5 -> R precedes S, so the
  // S-side instance must not join them (the R-side will).
  Fixture f;
  auto inst = f.make(Side::kS, /*record_matches=*/true);
  f.sim.schedule_at(0, [&] {
    inst->enqueue(rec(Side::kS, 1, 0, 5));  // store S
    inst->enqueue(rec(Side::kR, 1, 0, 5));  // probe with equal ts
  });
  f.sim.run();
  ASSERT_EQ(f.probe_results.size(), 1u);
  EXPECT_EQ(f.probe_results[0].first, 0u);
  EXPECT_TRUE(f.matches.empty());
}

TEST(JoinInstance, FastPathAndCheckedPathAgree) {
  // The suffix-scan fast path must count exactly what the full
  // pair-recording path counts.
  Fixture fast, checked;
  auto a = fast.make(Side::kR, false);
  auto b = checked.make(Side::kR, true);
  auto feed = [](Simulator& sim, JoinInstance& inst) {
    sim.schedule_at(0, [&] {
      for (int i = 0; i < 20; ++i) {
        inst.enqueue(rec(Side::kR, i % 3, i, i));
      }
      for (int i = 0; i < 10; ++i) {
        inst.enqueue(rec(Side::kS, i % 3, i, 100 + i));
      }
    });
    sim.run();
  };
  feed(fast.sim, *a);
  feed(checked.sim, *b);
  EXPECT_EQ(a->results_emitted(), b->results_emitted());
  EXPECT_EQ(b->results_emitted(), checked.matches.size());
}

TEST(JoinInstance, LatencyIncludesQueueing) {
  Fixture f;
  f.cost.store_cost = 100;
  f.cost.probe_base = 100;
  f.cost.probe_per_match = 0;
  auto inst = f.make(Side::kR);
  f.sim.schedule_at(0, [&] {
    inst->enqueue(rec(Side::kR, 1, 0, 0));   // served 0..100
    inst->enqueue(rec(Side::kS, 1, 0, 0));   // waits 100, served 100..200
  });
  f.sim.run();
  ASSERT_EQ(f.probe_results.size(), 1u);
  EXPECT_EQ(f.probe_results[0].second, 200);
}

TEST(JoinInstance, AggregateLoadTracksStoreAndQueue) {
  Fixture f;
  f.cost.store_cost = 1000;
  auto inst = f.make(Side::kR);
  f.sim.schedule_at(0, [&] {
    inst->enqueue(rec(Side::kR, 1, 0, 0));
    inst->enqueue(rec(Side::kS, 1, 0, 0));
    inst->enqueue(rec(Side::kS, 2, 1, 0));
    // Store in service; both probes pending.
    const auto load = inst->aggregate_load();
    EXPECT_EQ(load.stored, 0u);  // store not yet complete
    EXPECT_EQ(load.queued, 2u);  // phi counts pending probes
  });
  f.sim.run();
  // After draining, phi is the decayed recently-served probe count.
  const auto load = inst->aggregate_load();
  EXPECT_EQ(load.stored, 1u);
  EXPECT_EQ(load.queued, 2u);
  // Integer halving: two singleton key counters vanish in one decay.
  inst->decay_probe_window();
  EXPECT_EQ(inst->aggregate_load().queued, 0u);
}

TEST(JoinInstance, KeyLoadsMergeStoredAndPending) {
  Fixture f;
  auto inst = f.make(Side::kR);
  f.sim.schedule_at(0, [&] {
    inst->enqueue(rec(Side::kR, 1, 0, 0));  // will be stored
  });
  f.sim.schedule_at(10'000, [&] {
    inst->pause();
    inst->enqueue(rec(Side::kS, 2, 0, 10'000));  // stays pending
    inst->enqueue(rec(Side::kS, 1, 1, 10'001));  // pending on stored key
    const auto kl = inst->key_loads();
    ASSERT_EQ(kl.size(), 2u);  // sorted by key
    EXPECT_EQ(kl[0].key, 1u);
    EXPECT_EQ(kl[0].stored, 1u);
    EXPECT_EQ(kl[0].queued, 1u);
    EXPECT_EQ(kl[1].key, 2u);
    EXPECT_EQ(kl[1].stored, 0u);
    EXPECT_EQ(kl[1].queued, 1u);
    inst->resume();
  });
  f.sim.run();
}

TEST(JoinInstance, PauseResumeDrains) {
  Fixture f;
  auto inst = f.make(Side::kR);
  f.sim.schedule_at(0, [&] {
    inst->pause();
    inst->enqueue(rec(Side::kR, 1, 0, 0));
    inst->enqueue(rec(Side::kS, 1, 0, 1));
  });
  f.sim.schedule_at(1000, [&] {
    EXPECT_EQ(inst->stores_done(), 0u);
    inst->resume();
  });
  f.sim.run();
  EXPECT_EQ(inst->stores_done(), 1u);
  EXPECT_EQ(inst->probes_done(), 1u);
  EXPECT_EQ(inst->results_emitted(), 1u);
}

TEST(JoinInstance, WhenIdleFiresAfterInServiceJob) {
  Fixture f;
  f.cost.store_cost = 500;
  auto inst = f.make(Side::kR);
  SimTime fired_at = -1;
  f.sim.schedule_at(0, [&] { inst->enqueue(rec(Side::kR, 1, 0, 0)); });
  f.sim.schedule_at(100, [&] {
    inst->pause();
    EXPECT_TRUE(inst->busy());
    inst->when_idle([&] { fired_at = f.sim.now(); });
  });
  f.sim.run();
  EXPECT_EQ(fired_at, 500);  // after the in-service store completed
}

TEST(JoinInstance, WhenIdleImmediateIfNotBusy) {
  Fixture f;
  auto inst = f.make(Side::kR);
  bool fired = false;
  inst->when_idle([&] { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(JoinInstance, ExtractPullsStoredAndPending) {
  Fixture f;
  auto inst = f.make(Side::kR);
  f.sim.schedule_at(0, [&] {
    inst->enqueue(rec(Side::kR, 1, 0, 0));
    inst->enqueue(rec(Side::kR, 2, 1, 1));
  });
  f.sim.schedule_at(10'000, [&] {
    inst->pause();
    // Pending traffic for key 1 arrives while paused.
    inst->enqueue(rec(Side::kS, 1, 0, 10'000));
    inst->enqueue(rec(Side::kR, 1, 2, 10'001));
    inst->enqueue(rec(Side::kS, 2, 1, 10'002));

    std::vector<KeyLoad> sel{{.key = 1, .stored = 1, .queued = 1}};
    const auto batch = inst->extract(sel);
    EXPECT_EQ(batch.keys, (std::vector<KeyId>{1}));
    EXPECT_EQ(batch.stored.size(), 1u);   // the stored tuple of key 1
    EXPECT_EQ(batch.pending.size(), 2u);  // queued S-probe + R-store
    EXPECT_EQ(inst->aggregate_load().stored, 1u);  // key 2 remains
    EXPECT_EQ(inst->aggregate_load().queued, 1u);  // key-2 probe remains

    // New arrivals for the migrating key divert to the forward buffer.
    inst->enqueue(rec(Side::kS, 1, 1, 10'100));
    const auto fwd = inst->take_forward_buffer();
    ASSERT_EQ(fwd.size(), 1u);
    EXPECT_EQ(fwd[0].key, 1u);
    inst->resume();
  });
  f.sim.run();
}

TEST(JoinInstance, HoldAndReleasePreservePerKeyOrder) {
  Fixture f;
  auto inst = f.make(Side::kR, /*record_matches=*/true);
  f.sim.schedule_at(0, [&] {
    const std::vector<KeyId> keys{1};
    inst->hold_keys(keys);
    // These arrive from the dispatcher after rerouting; must be buffered.
    inst->enqueue(rec(Side::kS, 1, 5, 200));

    // The migrated batch: one stored tuple and one pending probe.
    MigrationBatch batch;
    batch.keys = keys;
    StoredTuple st;
    st.seq = 0;
    st.ts = 0;
    batch.stored.emplace_back(1, st);
    batch.pending.push_back(rec(Side::kS, 1, 3, 100));
    inst->absorb_stored(batch);

    // Forwarded records from the source (arrived there mid-migration).
    std::vector<Record> fwd{rec(Side::kS, 1, 4, 150)};
    inst->release_held(fwd);
  });
  f.sim.run();
  // All three probes must match the single stored tuple.
  EXPECT_EQ(inst->results_emitted(), 3u);
  ASSERT_EQ(f.probe_results.size(), 3u);
  // And they were processed in stream order: seq 3, 4, then 5.
  ASSERT_EQ(f.matches.size(), 3u);
  EXPECT_EQ(f.matches[0].s_seq, 3u);
  EXPECT_EQ(f.matches[1].s_seq, 4u);
  EXPECT_EQ(f.matches[2].s_seq, 5u);
}

TEST(JoinInstance, WindowedInstanceEvictsAndStopsMatching) {
  Fixture f;
  auto inst = f.make(Side::kR, false, /*subwindows=*/2);
  f.sim.schedule_at(0, [&] { inst->enqueue(rec(Side::kR, 1, 0, 0)); });
  f.sim.schedule_at(10'000, [&] { inst->advance_subwindow(); });
  f.sim.schedule_at(20'000, [&] {
    EXPECT_EQ(inst->advance_subwindow(), 1u);  // tuple expired
  });
  f.sim.schedule_at(30'000, [&] {
    inst->enqueue(rec(Side::kS, 1, 0, 30'000));
  });
  f.sim.run();
  ASSERT_EQ(f.probe_results.size(), 1u);
  EXPECT_EQ(f.probe_results[0].first, 0u);  // expired: no match
}

}  // namespace
}  // namespace fastjoin
