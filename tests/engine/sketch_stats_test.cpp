// Memory-bounded per-key statistics (SpaceSaving sketch, the Section
// IV-C chi_k * K concern): balancing must still work, and the join must
// remain exactly-once, when instances track only the top keys.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/trace.hpp"
#include "engine/engine.hpp"

namespace fastjoin {
namespace {

KeyStreamSpec spec(std::uint64_t seed) {
  KeyStreamSpec s;
  s.num_keys = 5000;  // far more keys than the sketch tracks
  s.zipf_s = 1.2;
  s.seed = seed;
  return s;
}

TraceConfig trace_cfg(std::uint64_t total) {
  TraceConfig tc;
  tc.total_records = total;
  tc.r_rate = 300'000;
  tc.s_rate = 300'000;
  return tc;
}

EngineConfig sketch_config(std::size_t capacity) {
  EngineConfig cfg;
  cfg.instances = 6;
  cfg.balancer.enabled = true;
  cfg.balancer.planner.theta = 1.5;
  cfg.balancer.min_heaviest_load = 20.0;
  cfg.balancer.monitor_period = kNanosPerSec / 100;
  cfg.stats_capacity = capacity;
  cfg.drain = true;
  return cfg;
}

TEST(SketchStats, ExactlyOnceWithBoundedStats) {
  const auto r = spec(1);
  const auto s = spec(1001);
  const auto tc = trace_cfg(20'000);
  std::map<KeyId, std::pair<std::uint64_t, std::uint64_t>> counts;
  {
    TraceGenerator gen(r, s, tc);
    while (auto x = gen.next()) {
      auto& [cr, cs] = counts[x->key];
      (x->side == Side::kR ? cr : cs)++;
    }
  }
  std::uint64_t expected = 0;
  for (const auto& [_, rs] : counts) expected += rs.first * rs.second;

  auto cfg = sketch_config(64);
  cfg.metrics.record_pairs = true;
  TraceGenerator gen(r, s, tc);
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, from_seconds(100));
  EXPECT_EQ(rep.results, expected);
  EXPECT_GT(rep.migrations, 0u);

  std::set<std::tuple<KeyId, std::uint64_t, std::uint64_t>> seen;
  for (const auto& p : rep.pairs) {
    EXPECT_TRUE(seen.insert({p.key, p.r_seq, p.s_seq}).second);
  }
}

TEST(SketchStats, BalancesComparablyToExact) {
  auto run_with = [&](std::size_t capacity) {
    TraceGenerator gen(spec(2), spec(1002), trace_cfg(60'000));
    SimJoinEngine engine(sketch_config(capacity));
    return engine.run(gen, from_seconds(100));
  };
  const auto exact = run_with(0);
  const auto sketch = run_with(128);
  ASSERT_GT(exact.migrations, 0u);
  ASSERT_GT(sketch.migrations, 0u);
  // The sketch tracks the hot keys, which carry the load: the balanced
  // outcome should be in the same ballpark as exact statistics.
  EXPECT_LT(sketch.mean_li, exact.mean_li * 3.0);
  EXPECT_GT(sketch.mean_throughput, exact.mean_throughput * 0.8);
}

TEST(SketchStats, TinySketchStillSafe) {
  // Even a capacity-4 sketch must not break correctness — it only
  // degrades selection quality.
  const auto r = spec(3);
  const auto s = spec(1003);
  const auto tc = trace_cfg(10'000);
  std::map<KeyId, std::pair<std::uint64_t, std::uint64_t>> counts;
  {
    TraceGenerator gen(r, s, tc);
    while (auto x = gen.next()) {
      auto& [cr, cs] = counts[x->key];
      (x->side == Side::kR ? cr : cs)++;
    }
  }
  std::uint64_t expected = 0;
  for (const auto& [_, rs] : counts) expected += rs.first * rs.second;

  auto cfg = sketch_config(4);
  TraceGenerator gen(r, s, tc);
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, from_seconds(100));
  EXPECT_EQ(rep.results, expected);
}

}  // namespace
}  // namespace fastjoin
