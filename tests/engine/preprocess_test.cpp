// The dispatching component's pre-processing unit (paper Section III-A:
// "performs some pre-processing operations such as ordering or certain
// user-defined functions").
#include <gtest/gtest.h>

#include "datagen/trace.hpp"
#include "engine/engine.hpp"

namespace fastjoin {
namespace {

class VectorSource final : public RecordSource {
 public:
  explicit VectorSource(std::vector<Record> records)
      : records_(std::move(records)) {}
  std::optional<Record> next() override {
    if (pos_ >= records_.size()) return std::nullopt;
    return records_[pos_++];
  }

 private:
  std::vector<Record> records_;
  std::size_t pos_ = 0;
};

std::vector<Record> tiny_trace(int n) {
  std::vector<Record> out;
  std::uint64_t r_seq = 0, s_seq = 0;
  for (int i = 0; i < n; ++i) {
    Record rec;
    rec.side = (i % 2 == 0) ? Side::kR : Side::kS;
    rec.key = static_cast<KeyId>(i % 10);
    rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
    rec.ts = i * 1000;
    rec.payload = i;
    out.push_back(rec);
  }
  return out;
}

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.instances = 2;
  cfg.balancer.enabled = false;
  cfg.drain = true;
  return cfg;
}

TEST(Preprocess, NullHookPassesEverything) {
  VectorSource src(tiny_trace(100));
  SimJoinEngine engine(small_config());
  const auto rep = engine.run(src, from_seconds(100));
  EXPECT_EQ(rep.records_in, 100u);
}

TEST(Preprocess, FilterDropsRecords) {
  auto cfg = small_config();
  // Drop every record of stream S: no probes on the R side, no stores
  // on the S side -> zero matches.
  cfg.preprocess = [](const Record& rec) -> std::optional<Record> {
    if (rec.side == Side::kS) return std::nullopt;
    return rec;
  };
  VectorSource src(tiny_trace(100));
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(src, from_seconds(100));
  EXPECT_EQ(rep.records_in, 50u);
  EXPECT_EQ(rep.results, 0u);
  EXPECT_EQ(rep.stores, 50u);
}

TEST(Preprocess, TransformRewritesKeys) {
  auto cfg = small_config();
  // Key normalization: collapse every key to 0 -> all pairs match.
  cfg.preprocess = [](const Record& rec) -> std::optional<Record> {
    Record out = rec;
    out.key = 0;
    return out;
  };
  VectorSource src(tiny_trace(40));  // 20 R + 20 S alternating
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(src, from_seconds(100));
  // All 20x20 cross pairs must join exactly once.
  EXPECT_EQ(rep.results, 400u);
}

TEST(Preprocess, DroppedRecordsNotCounted) {
  auto cfg = small_config();
  cfg.preprocess = [](const Record&) -> std::optional<Record> {
    return std::nullopt;  // drop everything
  };
  VectorSource src(tiny_trace(50));
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(src, from_seconds(100));
  EXPECT_EQ(rep.records_in, 0u);
  EXPECT_EQ(rep.stores, 0u);
  EXPECT_EQ(rep.probes, 0u);
}

}  // namespace
}  // namespace fastjoin
