// Elastic scale-out (paper Section IV-C): new instances join empty and
// are populated by key migrations, with no global rehash.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/trace.hpp"
#include "engine/engine.hpp"

namespace fastjoin {
namespace {

TraceConfig trace_config(std::uint64_t total) {
  TraceConfig tc;
  tc.total_records = total;
  tc.r_rate = 300'000;
  tc.s_rate = 300'000;
  return tc;
}

KeyStreamSpec spec(std::uint64_t seed) {
  KeyStreamSpec s;
  s.num_keys = 2000;
  s.zipf_s = 1.1;
  s.seed = seed;
  return s;
}

EngineConfig base_config() {
  EngineConfig cfg;
  cfg.instances = 4;
  cfg.balancer.enabled = true;
  cfg.balancer.planner.theta = 1.5;
  cfg.balancer.min_heaviest_load = 50.0;
  cfg.balancer.monitor_period = kNanosPerSec / 100;
  cfg.drain = true;
  return cfg;
}

TEST(ScaleOut, NewInstancesReceiveKeysViaMigration) {
  auto cfg = base_config();
  TraceGenerator gen(spec(1), spec(1001), trace_config(80'000));
  SimJoinEngine engine(cfg);
  engine.schedule_scale_out(from_seconds(0.05), 2);
  const auto rep = engine.run(gen, from_seconds(100));

  EXPECT_GT(rep.migrations, 0u);
  // At least one of the added instances (ids 4, 5) holds tuples now.
  std::uint64_t added_stored = 0;
  for (int g = 0; g < 2; ++g) {
    for (InstanceId i = 4; i < 6; ++i) {
      added_stored +=
          engine.instance(static_cast<Side>(g), i).store().size();
    }
  }
  EXPECT_GT(added_stored, 0u);
  // And the dispatcher routes migrated keys there via overrides only.
  EXPECT_GT(engine.dispatcher().overrides(Side::kR) +
                engine.dispatcher().overrides(Side::kS),
            0u);
  EXPECT_EQ(engine.dispatcher().group_size(), 6u);
}

TEST(ScaleOut, ExactlyOnceAcrossScaleOut) {
  auto cfg = base_config();
  cfg.metrics.record_pairs = true;
  TraceConfig tc = trace_config(20'000);
  KeyStreamSpec r = spec(2), s = spec(1002);
  // Ground truth.
  std::map<KeyId, std::pair<std::uint64_t, std::uint64_t>> counts;
  {
    TraceGenerator gen(r, s, tc);
    while (auto rec = gen.next()) {
      auto& [cr, cs] = counts[rec->key];
      (rec->side == Side::kR ? cr : cs)++;
    }
  }
  std::uint64_t expected = 0;
  for (const auto& [_, rs] : counts) expected += rs.first * rs.second;

  TraceGenerator gen(r, s, tc);
  SimJoinEngine engine(cfg);
  engine.schedule_scale_out(from_seconds(0.01), 3);
  const auto rep = engine.run(gen, from_seconds(100));
  EXPECT_EQ(rep.results, expected);

  std::set<std::tuple<KeyId, std::uint64_t, std::uint64_t>> seen;
  for (const auto& p : rep.pairs) {
    EXPECT_TRUE(seen.insert({p.key, p.r_seq, p.s_seq}).second);
  }
  EXPECT_EQ(seen.size(), expected);
}

TEST(ScaleOut, WithoutBalancerAddedInstancesStayEmpty) {
  auto cfg = base_config();
  cfg.balancer.enabled = false;
  TraceGenerator gen(spec(3), spec(1003), trace_config(20'000));
  SimJoinEngine engine(cfg);
  engine.schedule_scale_out(from_seconds(0.01), 1);
  engine.run(gen, from_seconds(100));
  for (int g = 0; g < 2; ++g) {
    EXPECT_EQ(engine.instance(static_cast<Side>(g), 4).store().size(), 0u);
  }
}

TEST(ScaleOut, ReducesHotInstanceShare) {
  // After scaling 4 -> 8, the heaviest instance's share of stored
  // tuples should drop relative to a run without scale-out.
  auto run = [&](bool scale) {
    auto cfg = base_config();
    TraceGenerator gen(spec(4), spec(1004), trace_config(80'000));
    SimJoinEngine engine(cfg);
    if (scale) engine.schedule_scale_out(from_seconds(0.02), 4);
    engine.run(gen, from_seconds(100));
    std::uint64_t max_stored = 0, total = 0;
    const std::uint32_t n = scale ? 8 : 4;
    for (InstanceId i = 0; i < n; ++i) {
      const auto sz = engine.instance(Side::kR, i).store().size();
      max_stored = std::max(max_stored, sz);
      total += sz;
    }
    return static_cast<double>(max_stored) / static_cast<double>(total);
  };
  EXPECT_LT(run(true), run(false));
}

}  // namespace
}  // namespace fastjoin
