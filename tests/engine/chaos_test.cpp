// Chaos property test: every engine feature at once, across random
// schedules. Windows + aggressive concurrent migrations + mid-run
// scale-out + instance crashes with checkpointing, on skewed Poisson
// traffic. Invariants checked per seed:
//   * the run terminates and consumes every record,
//   * results never exceed the full-history ground truth and are never
//     duplicated,
//   * per-instance load accounting stays consistent with the stores,
//   * crashed-and-recovered instances keep processing.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "datagen/trace.hpp"
#include "engine/engine.hpp"

namespace fastjoin {
namespace {

struct ChaosPlan {
  EngineConfig cfg;
  KeyStreamSpec r, s;
  TraceConfig tc;
  SimTime scale_at = 0;
  std::uint32_t scale_add = 0;
  std::vector<std::tuple<SimTime, Side, InstanceId>> failures;
};

ChaosPlan make_plan(std::uint64_t seed) {
  Xoshiro256 rng(seed * 2654435761ULL + 17);
  ChaosPlan p;

  p.r.num_keys = 200 + rng.next_below(1500);
  p.r.zipf_s = 0.8 + 0.1 * static_cast<double>(rng.next_below(8));
  p.r.seed = seed;
  p.s = p.r;
  p.s.seed = seed + 5000;
  p.s.rank_offset = rng.next_below(p.r.num_keys);

  p.tc.total_records = 8'000 + rng.next_below(8'000);
  p.tc.r_rate = 150'000;
  p.tc.s_rate = 150'000;
  p.tc.arrivals = ArrivalKind::kPoisson;
  p.tc.seed = seed;

  p.cfg.instances = 3 + static_cast<std::uint32_t>(rng.next_below(5));
  p.cfg.balancer.enabled = true;
  p.cfg.balancer.planner.theta = 1.2 + 0.2 * rng.next_below(4);
  p.cfg.balancer.min_heaviest_load = 5.0;
  p.cfg.balancer.monitor_period = kNanosPerSec / (100 + rng.next_below(150));
  p.cfg.balancer.max_concurrent_migrations = 1 + rng.next_below(3);
  if (rng.next_below(2)) {
    p.cfg.window_subwindows = 2 + static_cast<std::uint32_t>(
                                      rng.next_below(6));
    p.cfg.subwindow_len = kNanosPerSec / 50;
  }
  p.cfg.checkpoint_period = kNanosPerSec / (20 + rng.next_below(80));
  p.cfg.metrics.record_pairs = true;
  p.cfg.drain = true;
  p.cfg.seed = seed;

  const double feed_secs = static_cast<double>(p.tc.total_records) /
                           (p.tc.r_rate + p.tc.s_rate);
  if (rng.next_below(2)) {
    p.scale_at = from_seconds(feed_secs * 0.3);
    p.scale_add = 1 + static_cast<std::uint32_t>(rng.next_below(3));
  }
  const auto n_failures = rng.next_below(3);
  for (std::uint64_t i = 0; i < n_failures; ++i) {
    p.failures.emplace_back(
        from_seconds(feed_secs * (0.2 + 0.2 * static_cast<double>(i + 1))),
        static_cast<Side>(rng.next_below(2)),
        static_cast<InstanceId>(rng.next_below(p.cfg.instances)));
  }
  return p;
}

class ChaosTest : public ::testing::TestWithParam<int> {};

TEST_P(ChaosTest, InvariantsHold) {
  const auto plan = make_plan(static_cast<std::uint64_t>(GetParam()));

  // Full-history ground truth (upper bound under windows/failures).
  std::map<KeyId, std::pair<std::uint64_t, std::uint64_t>> counts;
  {
    TraceGenerator gen(plan.r, plan.s, plan.tc);
    while (auto x = gen.next()) {
      auto& [cr, cs] = counts[x->key];
      (x->side == Side::kR ? cr : cs)++;
    }
  }
  std::uint64_t upper = 0;
  for (const auto& [_, rs] : counts) upper += rs.first * rs.second;

  TraceGenerator gen(plan.r, plan.s, plan.tc);
  SimJoinEngine engine(plan.cfg);
  if (plan.scale_add) engine.schedule_scale_out(plan.scale_at, plan.scale_add);
  for (const auto& [at, side, id] : plan.failures) {
    engine.schedule_failure(at, side, id);
  }
  const auto rep = engine.run(gen, from_seconds(1000));

  // Terminates with every record consumed.
  EXPECT_EQ(rep.records_in, plan.tc.total_records);
  // Bounded by the full-history ground truth, never duplicated.
  EXPECT_LE(rep.results, upper);
  std::set<std::tuple<KeyId, std::uint64_t, std::uint64_t>> seen;
  for (const auto& p : rep.pairs) {
    ASSERT_TRUE(seen.insert({p.key, p.r_seq, p.s_seq}).second)
        << "duplicate pair (seed " << GetParam() << ")";
  }
  EXPECT_EQ(seen.size(), rep.results);
  // If nothing could lose tuples, the result must be exact.
  if (plan.cfg.window_subwindows == 0 && rep.failures == 0) {
    EXPECT_EQ(rep.results, upper) << "seed " << GetParam();
  }
  // Load accounting consistent with the physical stores.
  const std::uint32_t n = plan.cfg.instances + plan.scale_add;
  for (int g = 0; g < 2; ++g) {
    for (InstanceId i = 0; i < n; ++i) {
      if (plan.scale_add == 0 && i >= plan.cfg.instances) break;
      const auto& inst = engine.instance(static_cast<Side>(g), i);
      EXPECT_EQ(inst.aggregate_load().stored, inst.store().size());
      EXPECT_FALSE(inst.paused());
      EXPECT_EQ(inst.queue_length(), 0u);  // fully drained
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace fastjoin
