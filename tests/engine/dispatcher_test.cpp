#include "engine/dispatcher.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace fastjoin {
namespace {

Record rec(Side side, KeyId key) {
  Record r;
  r.side = side;
  r.key = key;
  return r;
}

TEST(Dispatcher, HashRoutesStoreAndProbeOfSameKeyTogether) {
  Dispatcher d(PartitionStrategy::kHash, 16);
  for (KeyId k = 0; k < 1000; ++k) {
    const auto store_dst = d.route_store(rec(Side::kR, k));
    std::vector<InstanceId> probes;
    d.route_probe(Side::kR, rec(Side::kS, k), probes);
    ASSERT_EQ(probes.size(), 1u);
    // An S tuple probing the R group must land where R tuples of the
    // same key are stored — that is what makes hash join work.
    EXPECT_EQ(probes[0], store_dst);
  }
}

TEST(Dispatcher, HashIsDeterministic) {
  Dispatcher a(PartitionStrategy::kHash, 48, 4, 7);
  Dispatcher b(PartitionStrategy::kHash, 48, 4, 7);
  for (KeyId k = 0; k < 100; ++k) {
    EXPECT_EQ(a.route_store(rec(Side::kR, k)),
              b.route_store(rec(Side::kR, k)));
  }
}

TEST(Dispatcher, HashSidesAreIndependent) {
  Dispatcher d(PartitionStrategy::kHash, 16);
  // R-group and S-group routing use the same hash (same seed), but
  // overrides apply per group.
  d.apply_override(Side::kR, 42, 3);
  EXPECT_EQ(d.hash_route(Side::kR, 42), 3u);
  EXPECT_EQ(d.hash_route(Side::kS, 42), instance_of(42, 16, 0));
}

TEST(Dispatcher, OverrideRedirectsBothRoles) {
  Dispatcher d(PartitionStrategy::kHash, 16);
  const KeyId k = 123;
  const InstanceId home = d.hash_route(Side::kR, k);
  const InstanceId dst = (home + 1) % 16;
  d.apply_override(Side::kR, k, dst);
  EXPECT_EQ(d.route_store(rec(Side::kR, k)), dst);
  std::vector<InstanceId> probes;
  d.route_probe(Side::kR, rec(Side::kS, k), probes);
  ASSERT_EQ(probes.size(), 1u);
  EXPECT_EQ(probes[0], dst);
}

TEST(Dispatcher, OverrideBackHomeErases) {
  Dispatcher d(PartitionStrategy::kHash, 16);
  const KeyId k = 55;
  const InstanceId home = d.hash_route(Side::kR, k);
  d.apply_override(Side::kR, k, (home + 1) % 16);
  EXPECT_EQ(d.overrides(Side::kR), 1u);
  d.apply_override(Side::kR, k, home);  // migrate back home
  EXPECT_EQ(d.overrides(Side::kR), 0u);
  EXPECT_EQ(d.hash_route(Side::kR, k), home);
}

TEST(Dispatcher, ContRandProbesCoverStoreDestination) {
  // Completeness under ContRand: wherever a store lands, the probe
  // broadcast for the same key must include that instance.
  Dispatcher d(PartitionStrategy::kContRand, 16, 4);
  for (KeyId k = 0; k < 200; ++k) {
    for (int i = 0; i < 8; ++i) {  // stores round-robin inside subgroup
      const auto store_dst = d.route_store(rec(Side::kR, k));
      std::vector<InstanceId> probes;
      d.route_probe(Side::kR, rec(Side::kS, k), probes);
      EXPECT_EQ(probes.size(), 4u);
      EXPECT_NE(std::find(probes.begin(), probes.end(), store_dst),
                probes.end());
    }
  }
}

TEST(Dispatcher, ContRandSpreadsKeyInsideSubgroup) {
  Dispatcher d(PartitionStrategy::kContRand, 16, 4);
  std::set<InstanceId> dsts;
  for (int i = 0; i < 16; ++i) {
    dsts.insert(d.route_store(rec(Side::kR, 7)));
  }
  EXPECT_EQ(dsts.size(), 4u);  // a hot key spreads over its subgroup
}

TEST(Dispatcher, RandomBroadcastProbesEverywhere) {
  Dispatcher d(PartitionStrategy::kRandomBroadcast, 8);
  std::vector<InstanceId> probes;
  d.route_probe(Side::kR, rec(Side::kS, 1), probes);
  EXPECT_EQ(probes.size(), 8u);
  std::set<InstanceId> unique(probes.begin(), probes.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(Dispatcher, RandomBroadcastStoresBalancePerfectly) {
  Dispatcher d(PartitionStrategy::kRandomBroadcast, 8);
  std::map<InstanceId, int> counts;
  for (int i = 0; i < 800; ++i) {
    ++counts[d.route_store(rec(Side::kR, static_cast<KeyId>(i % 3)))];
  }
  for (const auto& [_, c] : counts) EXPECT_EQ(c, 100);
}

TEST(Dispatcher, ContRandGroupClamped) {
  // Subgroup larger than the group degenerates to broadcast-to-all.
  Dispatcher d(PartitionStrategy::kContRand, 4, 100);
  std::vector<InstanceId> probes;
  d.route_probe(Side::kR, rec(Side::kS, 9), probes);
  EXPECT_EQ(probes.size(), 4u);
}

TEST(Dispatcher, StrategyNames) {
  EXPECT_STREQ(strategy_name(PartitionStrategy::kHash), "hash");
  EXPECT_STREQ(strategy_name(PartitionStrategy::kContRand), "contrand");
  EXPECT_STREQ(strategy_name(PartitionStrategy::kRandomBroadcast),
               "random-broadcast");
}

}  // namespace
}  // namespace fastjoin
