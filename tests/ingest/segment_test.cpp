// SegmentFile: the fixed-capacity extent under every StreamLog
// partition. Covered: append/read round trips, the capacity refusal
// that triggers a roll, flush bookkeeping, and the file backend's
// create/flush/reopen durability contract.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "ingest/segment.hpp"

namespace fastjoin {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("fastjoin_segment_" + name + "_" +
           std::to_string(::getpid()) + ".seg"))
      .string();
}

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(SegmentFile, MemoryAppendReadRoundtrip) {
  SegmentFile seg(SegmentBackend::kMemory, "mem", 64);
  const auto a = bytes_of("hello ");
  const auto b = bytes_of("world");
  EXPECT_TRUE(seg.append(a.data(), a.size()));
  EXPECT_TRUE(seg.append(b.data(), b.size()));
  EXPECT_EQ(seg.size(), 11u);

  char buf[16] = {};
  EXPECT_EQ(seg.read(0, buf, 11), 11u);
  EXPECT_EQ(std::string(buf, 11), "hello world");
  // Offset read, bounded by size.
  EXPECT_EQ(seg.read(6, buf, 16), 5u);
  EXPECT_EQ(std::string(buf, 5), "world");
  // Read past the end yields nothing.
  EXPECT_EQ(seg.read(11, buf, 4), 0u);
}

TEST(SegmentFile, AppendRefusesBeyondCapacity) {
  SegmentFile seg(SegmentBackend::kMemory, "mem", 8);
  const auto five = bytes_of("12345");
  EXPECT_TRUE(seg.has_room(5));
  EXPECT_TRUE(seg.append(five.data(), 5));
  // 5 + 5 > 8: refused, and nothing is written.
  EXPECT_FALSE(seg.has_room(5));
  EXPECT_FALSE(seg.append(five.data(), 5));
  EXPECT_EQ(seg.size(), 5u);
  // An exact fit still goes in.
  EXPECT_TRUE(seg.append(five.data(), 3));
  EXPECT_EQ(seg.size(), 8u);
}

TEST(SegmentFile, UnflushedBytesTrackAppendsAndFlush) {
  SegmentFile seg(SegmentBackend::kMemory, "mem", 64);
  const auto a = bytes_of("abcd");
  EXPECT_EQ(seg.unflushed_bytes(), 0u);
  seg.append(a.data(), a.size());
  EXPECT_EQ(seg.unflushed_bytes(), 4u);
  seg.append(a.data(), a.size());
  EXPECT_EQ(seg.unflushed_bytes(), 8u);
  seg.flush();
  EXPECT_EQ(seg.unflushed_bytes(), 0u);
  seg.append(a.data(), a.size());
  EXPECT_EQ(seg.unflushed_bytes(), 4u);
  EXPECT_EQ(seg.size(), 12u);
}

TEST(SegmentFile, FileBackendRoundtripAndReadBeforeFlush) {
  const std::string path = temp_path("rw");
  {
    SegmentFile seg(SegmentBackend::kFile, path, 64);
    ASSERT_EQ(seg.backend(), SegmentBackend::kFile);
    const auto a = bytes_of("durable!");
    seg.append(a.data(), a.size());
    // read() must see appended-but-unflushed bytes (it flushes first).
    char buf[16] = {};
    EXPECT_EQ(seg.read(0, buf, 8), 8u);
    EXPECT_EQ(std::string(buf, 8), "durable!");
  }
  std::filesystem::remove(path);
}

TEST(SegmentFile, FileBackendReopenRestoresContents) {
  const std::string path = temp_path("reopen");
  {
    SegmentFile seg(SegmentBackend::kFile, path, 64);
    const auto a = bytes_of("0123456789");
    seg.append(a.data(), a.size());
    seg.flush();
  }  // destructor closes the file
  auto seg = SegmentFile::reopen(path, 64);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->size(), 10u);
  EXPECT_EQ(seg->unflushed_bytes(), 0u);
  char buf[16] = {};
  EXPECT_EQ(seg->read(2, buf, 8), 8u);
  EXPECT_EQ(std::string(buf, 8), "23456789");
  // A reopened segment keeps accepting appends up to capacity.
  const auto b = bytes_of("ab");
  EXPECT_TRUE(seg->append(b.data(), 2));
  EXPECT_EQ(seg->size(), 12u);
  std::filesystem::remove(path);
}

TEST(SegmentFile, ReopenMissingFileFails) {
  EXPECT_EQ(SegmentFile::reopen(temp_path("missing_nonexistent"), 64),
            nullptr);
}

TEST(SegmentFile, BackendNames) {
  EXPECT_STREQ(segment_backend_name(SegmentBackend::kMemory), "memory");
  EXPECT_STREQ(segment_backend_name(SegmentBackend::kFile), "file");
}

}  // namespace
}  // namespace fastjoin
