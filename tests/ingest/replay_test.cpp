// Engine-level StreamLog integration: with LiveConfig::ingest enabled,
// crash recovery replays the log instead of dropping the crash window.
// The headline assertions are records_dropped == 0, zero duplicate
// emissions, and — for single-producer runs without migrations — an
// exactly complete join result despite crashes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "runtime/live_engine.hpp"

#include "datagen/keygen.hpp"

namespace fastjoin {
namespace {

std::vector<Record> make_trace(std::uint64_t seed, int total,
                               int num_keys, double zipf,
                               std::uint64_t key_base = 0) {
  KeyStreamSpec spec;
  spec.num_keys = num_keys;
  spec.zipf_s = zipf;
  spec.seed = seed;
  KeyGenerator gen(spec);
  Xoshiro256 rng(seed ^ 0xbeef);
  std::vector<Record> out;
  std::uint64_t r_seq = seed << 32, s_seq = seed << 32;
  for (int i = 0; i < total; ++i) {
    Record rec;
    rec.side = rng.next_below(2) ? Side::kS : Side::kR;
    rec.key = gen() + key_base;
    rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
    rec.ts = i;
    rec.payload = i;
    out.push_back(rec);
  }
  return out;
}

std::uint64_t expected_pairs(const std::vector<Record>& trace) {
  std::map<KeyId, std::pair<std::uint64_t, std::uint64_t>> counts;
  for (const auto& rec : trace) {
    auto& [r, s] = counts[rec.key];
    (rec.side == Side::kR ? r : s)++;
  }
  std::uint64_t total = 0;
  for (const auto& [_, rs] : counts) total += rs.first * rs.second;
  return total;
}

/// Duplicate detector (same fingerprint fold as the chaos tests).
class MatchLog {
 public:
  void attach(LiveEngine& engine) {
    engine.set_on_match([this](const MatchPair& p) {
      const std::uint64_t fp =
          mix(mix(p.key) ^ mix(p.r_seq * 0x9e3779b97f4a7c15ull) ^
              mix(p.s_seq + 0xbf58476d1ce4e5b9ull));
      std::lock_guard<std::mutex> lock(mu_);
      if (!seen_.insert(fp).second) ++duplicates_;
    });
  }
  std::size_t duplicates() const {
    std::lock_guard<std::mutex> lock(mu_);
    return duplicates_;
  }
  std::size_t unique() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_.size();
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  mutable std::mutex mu_;
  std::unordered_set<std::uint64_t> seen_;
  std::size_t duplicates_ = 0;
};

LiveConfig replay_config() {
  LiveConfig cfg;
  cfg.instances = 2;
  cfg.balancer = false;  // no migrations: loss ledger must be all zero
  cfg.monitor_period = std::chrono::milliseconds(2);
  cfg.checkpoint_period = std::chrono::milliseconds(5);
  cfg.ingest.enabled = true;
  return cfg;
}

TEST(IngestReplay, CrashLosesNothingWithCheckpoints) {
  LiveConfig cfg = replay_config();
  LiveEngine engine(cfg);
  ASSERT_NE(engine.ingest_log(), nullptr);
  MatchLog log;
  log.attach(engine);
  engine.start();

  const auto trace = make_trace(31, 20'000, 200, 1.0);
  const std::uint64_t expected = expected_pairs(trace);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    engine.push(trace[i]);
    if (i == trace.size() / 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      engine.crash(Side::kR, 0);
    }
    if (i % 2000 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto stats = engine.finish();

  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_GT(stats.records_replayed, 0u);
  // The headline guarantees: no delivery lost, none duplicated, and the
  // join result is exactly complete.
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(stats.buffered_lost, 0u);
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_EQ(log.unique(), expected);
  EXPECT_EQ(stats.results, expected);
  EXPECT_EQ(stats.ingest_appended, stats.records_in);
}

TEST(IngestReplay, CrashWithoutCheckpointsReplaysFromOrigin) {
  LiveConfig cfg = replay_config();
  cfg.checkpoint_period = std::chrono::milliseconds(0);  // off
  LiveEngine engine(cfg);
  MatchLog log;
  log.attach(engine);
  engine.start();

  const auto trace = make_trace(32, 10'000, 100, 1.0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    engine.push(trace[i]);
    if (i == trace.size() / 2) engine.crash(Side::kS, 1);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto stats = engine.finish();

  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.tuples_restored, 0u);  // no checkpoint existed
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(stats.buffered_lost, 0u);
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_EQ(log.unique(), expected_pairs(trace));
}

TEST(IngestReplay, RepeatedCrashesStayExact) {
  LiveConfig cfg = replay_config();
  LiveEngine engine(cfg);
  MatchLog log;
  log.attach(engine);
  engine.start();

  const auto trace = make_trace(33, 24'000, 150, 1.0);
  Xoshiro256 rng(77);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    engine.push(trace[i]);
    if (i % 6'000 == 5'999) {
      engine.crash(static_cast<Side>(rng.next_below(2)),
                   static_cast<InstanceId>(rng.next_below(cfg.instances)));
      std::this_thread::sleep_for(std::chrono::milliseconds(8));
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  const auto stats = engine.finish();

  EXPECT_GE(stats.crashes, 3u);
  EXPECT_EQ(stats.recoveries, stats.crashes);
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(stats.buffered_lost, 0u);
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_EQ(log.unique(), expected_pairs(trace));
  EXPECT_EQ(stats.results, expected_pairs(trace));
}

TEST(IngestReplay, MultiProducerDisjointKeysStayExact) {
  LiveConfig cfg = replay_config();
  cfg.max_producers = 3;
  LiveEngine engine(cfg);
  MatchLog log;
  log.attach(engine);
  engine.start();

  // Three producers with disjoint key ranges: per-key order is intact
  // within each producer's lane/partition, so the total must be exact.
  std::vector<std::vector<Record>> traces;
  std::uint64_t expected = 0;
  for (std::uint64_t t = 0; t < 3; ++t) {
    traces.push_back(
        make_trace(40 + t, 8'000, 80, 1.0, /*key_base=*/t * 1'000'000));
    expected += expected_pairs(traces.back());
  }
  std::atomic<bool> crash_fired{false};
  std::vector<std::thread> producers;
  for (std::uint64_t t = 0; t < 3; ++t) {
    producers.emplace_back([&, t] {
      const int producer = engine.register_producer();
      EXPECT_NE(producer, LiveEngine::kUnregistered);
      const auto& trace = traces[t];
      for (std::size_t i = 0; i < trace.size(); ++i) {
        engine.push(trace[i], producer);
        if (t == 0 && i == trace.size() / 2 &&
            !crash_fired.exchange(true)) {
          engine.crash(Side::kR, 1);
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  const auto stats = engine.finish();

  EXPECT_GE(stats.crashes, 1u);
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(stats.buffered_lost, 0u);
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_EQ(log.unique(), expected);
  EXPECT_EQ(stats.results, expected);
}

TEST(IngestReplay, CheckpointsDriveRetention) {
  LiveConfig cfg = replay_config();
  cfg.checkpoint_period = std::chrono::milliseconds(3);
  cfg.ingest.segment_bytes = 64 * kLogRecordBytes;  // tiny: many rolls
  LiveEngine engine(cfg);
  MatchLog log;
  log.attach(engine);
  engine.start();

  const auto trace = make_trace(34, 30'000, 100, 1.0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    engine.push(trace[i]);
    if (i % 1'000 == 999) {
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
    }
    if (i == 20'000) engine.crash(Side::kR, 0);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto stats = engine.finish();

  // Retention kicked in (checkpoints advanced the safe floor) yet the
  // crash still replayed exactly — truncation never eats replayable
  // records.
  EXPECT_GT(stats.log_truncated, 0u);
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_EQ(log.unique(), expected_pairs(trace));
}

TEST(IngestReplay, BackpressureBoundsUnflushedBytes) {
  LiveConfig cfg = replay_config();
  cfg.checkpoint_period = std::chrono::milliseconds(0);
  cfg.ingest.segment_bytes = 256 * kLogRecordBytes;
  cfg.ingest.max_unflushed_bytes = 8 * kLogRecordBytes;  // very tight
  LiveEngine engine(cfg);
  engine.start();
  const auto trace = make_trace(35, 5'000, 50, 1.0);
  for (const auto& rec : trace) engine.push(rec);
  const auto stats = engine.finish();
  // The tight bound forced flush-and-retry cycles, but admission
  // control never lost a record.
  EXPECT_GT(stats.ingest_backpressure, 0u);
  EXPECT_EQ(stats.ingest_appended, trace.size());
  EXPECT_EQ(stats.records_dropped, 0u);
}

TEST(IngestReplay, FileBackendSurvivesCrashReplay) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       ("fastjoin_replay_file_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  LiveConfig cfg = replay_config();
  cfg.ingest.backend = SegmentBackend::kFile;
  cfg.ingest.dir = dir;
  LiveEngine engine(cfg);
  MatchLog log;
  log.attach(engine);
  engine.start();
  const auto trace = make_trace(36, 8'000, 80, 1.0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    engine.push(trace[i]);
    if (i == trace.size() / 2) engine.crash(Side::kS, 0);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto stats = engine.finish();
  EXPECT_EQ(stats.records_dropped, 0u);
  EXPECT_EQ(log.duplicates(), 0u);
  EXPECT_EQ(log.unique(), expected_pairs(trace));
  fs::remove_all(dir);
}

TEST(IngestReplay, IngestRequiresLanedPlane) {
  LiveConfig cfg = replay_config();
  cfg.data_plane = DataPlane::kLegacyLocked;
  LiveEngine engine(cfg);
  // The engine refuses (logs) the combination and runs without a log.
  EXPECT_EQ(engine.ingest_log(), nullptr);
  engine.start();
  const auto trace = make_trace(37, 2'000, 50, 1.0);
  for (const auto& rec : trace) engine.push(rec);
  const auto stats = engine.finish();
  EXPECT_EQ(stats.ingest_appended, 0u);
  EXPECT_EQ(stats.results, expected_pairs(trace));
}

TEST(IngestReplay, WriteOnlyModeKeepsLegacyLossAccounting) {
  LiveConfig cfg = replay_config();
  cfg.ingest.replay = false;  // audit-trail mode: log but never replay
  cfg.monitor_period = std::chrono::milliseconds(100);  // slow respawn
  LiveEngine engine(cfg);
  engine.start();
  const auto trace = make_trace(38, 4'000, 50, 1.0);
  for (std::size_t i = 0; i < 2'000; ++i) engine.push(trace[i]);
  engine.crash(Side::kR, 0);
  engine.crash(Side::kR, 1);  // whole R side down
  for (std::size_t i = 2'000; i < trace.size(); ++i) {
    engine.push(trace[i]);
  }
  const auto stats = engine.finish();
  // Without replay the crash window is dropped (and counted), exactly
  // like the pre-ingest engine — but the log still recorded everything.
  EXPECT_GT(stats.records_dropped, 0u);
  EXPECT_EQ(stats.ingest_appended, stats.records_in);
}

}  // namespace
}  // namespace fastjoin
