// feed_log / pump_log: the RecordSource -> StreamLog bridge and the
// merged, order-preserving playback.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "engine/tuple.hpp"
#include "ingest/feeder.hpp"

namespace fastjoin {
namespace {

/// Minimal in-memory RecordSource for driving the feeder.
class VectorSource final : public RecordSource {
 public:
  explicit VectorSource(std::vector<Record> recs)
      : recs_(std::move(recs)) {}
  std::optional<Record> next() override {
    if (i_ >= recs_.size()) return std::nullopt;
    return recs_[i_++];
  }

 private:
  std::vector<Record> recs_;
  std::size_t i_ = 0;
};

std::vector<Record> make_records(std::uint64_t n, std::uint64_t keys) {
  std::vector<Record> out;
  std::uint64_t r_seq = 0, s_seq = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    Record r;
    r.key = i % keys;
    r.side = (i % 3 == 0) ? Side::kS : Side::kR;
    r.seq = r.side == Side::kR ? r_seq++ : s_seq++;
    r.ts = static_cast<SimTime>(i);
    r.payload = i;
    out.push_back(r);
  }
  return out;
}

TEST(Feeder, FeedByKeyCoversAllRecordsAndKeepsPerKeyOrder) {
  const auto recs = make_records(1000, 13);
  VectorSource src(recs);
  IngestConfig cfg;
  cfg.partitions = 4;
  StreamLog log(cfg);
  const FeedStats fs = feed_log(src, log, PartitionPolicy::kByKey,
                                /*max_records=*/0, /*batch=*/128);
  EXPECT_EQ(fs.records, 1000u);
  EXPECT_EQ(fs.batches, (1000u + 127) / 128);
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    total += log.end_offset(p) - log.start_offset(p);
    // kByKey: all of one key's records land in one partition, in their
    // original (ts) order.
    std::vector<LogRecord> got;
    log.read(p, 0, 2000, got);
    std::map<KeyId, SimTime> last_ts;
    for (const auto& lr : got) {
      auto it = last_ts.find(lr.rec.key);
      if (it != last_ts.end()) {
        EXPECT_LT(it->second, lr.rec.ts);
      }
      last_ts[lr.rec.key] = lr.rec.ts;
    }
  }
  EXPECT_EQ(total, 1000u);
  // Every key maps to exactly one partition.
  std::map<KeyId, std::uint32_t> key_part;
  for (std::uint32_t p = 0; p < 4; ++p) {
    std::vector<LogRecord> got;
    log.read(p, 0, 2000, got);
    for (const auto& lr : got) {
      auto [it, fresh] = key_part.emplace(lr.rec.key, p);
      if (!fresh) {
        EXPECT_EQ(it->second, p) << "key " << lr.rec.key;
      }
    }
  }
}

TEST(Feeder, FeedRoundRobinSpreadsEvenlyAndHonorsMaxRecords) {
  const auto recs = make_records(100, 1);  // one key: worst case for RR
  VectorSource src(recs);
  IngestConfig cfg;
  cfg.partitions = 4;
  StreamLog log(cfg);
  const FeedStats fs =
      feed_log(src, log, PartitionPolicy::kRoundRobin, /*max_records=*/80);
  EXPECT_EQ(fs.records, 80u);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(log.end_offset(p), 20u);
  }
}

TEST(Feeder, PumpMergesPartitionsInStreamOrder) {
  const auto recs = make_records(500, 7);
  VectorSource src(recs);
  IngestConfig cfg;
  cfg.partitions = 3;
  StreamLog log(cfg);
  feed_log(src, log);
  std::vector<Record> out;
  const std::uint64_t n = pump_log(
      log, {}, [&](const Record& r) {
        out.push_back(r);
        return true;
      });
  EXPECT_EQ(n, 500u);
  ASSERT_EQ(out.size(), 500u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_TRUE(precedes(out[i - 1], out[i]))
        << "out of order at " << i;
  }
}

TEST(Feeder, PumpStartsAtFromOffsetsAndStopsOnSinkFalse) {
  const auto recs = make_records(100, 5);
  VectorSource src(recs);
  IngestConfig cfg;
  cfg.partitions = 1;
  StreamLog log(cfg);
  feed_log(src, log);
  // from = 40: only the last 60 records flow.
  std::uint64_t n = pump_log(log, {40}, [](const Record&) { return true; });
  EXPECT_EQ(n, 60u);
  // A refusing sink sees exactly one record (not counted as delivered).
  std::uint64_t seen = 0;
  n = pump_log(log, {}, [&](const Record&) {
    ++seen;
    return false;
  });
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(seen, 1u);
}

TEST(Feeder, DefaultNextBatchDrainsAnySource) {
  const auto recs = make_records(10, 3);
  VectorSource src(recs);
  Record buf[4];
  std::size_t total = 0, n;
  while ((n = src.next_batch(buf, 4)) > 0) total += n;
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace fastjoin
