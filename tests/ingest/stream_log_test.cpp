// StreamLog: partitioned append-only log semantics — dense monotone
// offsets, segment rolling, retention truncation, backpressure
// admission control, concurrent appenders, and file-backed recovery via
// StreamLog::open().
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ingest/stream_log.hpp"

namespace fastjoin {
namespace {

Record rec_of(std::uint64_t i, Side side = Side::kR) {
  Record r;
  r.key = i % 17;
  r.seq = i;
  r.payload = i * 3;
  r.ts = static_cast<SimTime>(i);
  r.side = side;
  return r;
}

std::string temp_dir(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("fastjoin_streamlog_" + name + "_" +
           std::to_string(::getpid())))
      .string();
}

TEST(StreamLog, OffsetsAreDenseAndMonotone) {
  IngestConfig cfg;
  cfg.partitions = 2;
  StreamLog log(cfg);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(log.append(0, rec_of(i)), i);
  }
  // Partitions number independently.
  EXPECT_EQ(log.append(1, rec_of(0)), 0u);
  EXPECT_EQ(log.start_offset(0), 0u);
  EXPECT_EQ(log.end_offset(0), 100u);
  EXPECT_EQ(log.end_offset(1), 1u);
  EXPECT_EQ(log.stats().appended_records, 101u);
}

TEST(StreamLog, ReadRoundtripsRecordsAndRouting) {
  IngestConfig cfg;
  StreamLog log(cfg);
  for (std::uint64_t i = 0; i < 10; ++i) {
    log.append(0, rec_of(i, i % 2 ? Side::kS : Side::kR),
               static_cast<InstanceId>(i % 3),
               static_cast<InstanceId>(i % 5));
  }
  std::vector<LogRecord> got;
  EXPECT_EQ(log.read(0, 0, 100, got), 10u);
  ASSERT_EQ(got.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(got[i].offset, i);
    EXPECT_EQ(got[i].rec.seq, i);
    EXPECT_EQ(got[i].rec.payload, i * 3);
    EXPECT_EQ(got[i].rec.side, i % 2 ? Side::kS : Side::kR);
    EXPECT_EQ(got[i].store_dst, static_cast<InstanceId>(i % 3));
    EXPECT_EQ(got[i].probe_dst, static_cast<InstanceId>(i % 5));
  }
  // Bounded and offset reads.
  got.clear();
  EXPECT_EQ(log.read(0, 4, 3, got), 3u);
  EXPECT_EQ(got.front().offset, 4u);
  EXPECT_EQ(got.back().offset, 6u);
  got.clear();
  EXPECT_EQ(log.read(0, 10, 5, got), 0u);  // at end
}

TEST(StreamLog, SegmentRollPreservesOffsets) {
  IngestConfig cfg;
  cfg.segment_bytes = 4 * kLogRecordBytes;  // tiny: rolls every 4 records
  StreamLog log(cfg);
  const std::uint64_t n = 41;
  for (std::uint64_t i = 0; i < n; ++i) log.append(0, rec_of(i));
  EXPECT_GE(log.stats().segments_rolled, 9u);
  std::vector<LogRecord> got;
  EXPECT_EQ(log.read(0, 0, n + 10, got), n);
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i].offset, i);
    EXPECT_EQ(got[i].rec.seq, i);
  }
}

TEST(StreamLog, TruncateDropsWholeSegmentsOnly) {
  IngestConfig cfg;
  cfg.segment_bytes = 4 * kLogRecordBytes;
  StreamLog log(cfg);
  for (std::uint64_t i = 0; i < 20; ++i) log.append(0, rec_of(i));
  // Safe offset 6 lies inside the second segment [4, 8): only the first
  // segment [0, 4) may go.
  EXPECT_EQ(log.truncate_before(0, 6), 4u);
  EXPECT_EQ(log.start_offset(0), 4u);
  EXPECT_EQ(log.end_offset(0), 20u);
  // Reads below the retention floor are clamped up, offsets intact.
  std::vector<LogRecord> got;
  EXPECT_EQ(log.read(0, 0, 100, got), 16u);
  EXPECT_EQ(got.front().offset, 4u);
  EXPECT_EQ(got.front().rec.seq, 4u);
  // The active segment is never truncated, even when fully covered:
  // only [4,8), [8,12) and [12,16) go; [16,20) stays.
  EXPECT_EQ(log.truncate_before(0, 1000), 12u);
  EXPECT_EQ(log.start_offset(0), 16u);
  EXPECT_EQ(log.end_offset(0), 20u);
  EXPECT_EQ(log.stats().records_truncated, 16u);
}

TEST(StreamLog, BackpressureRefusesThenFlushClears) {
  IngestConfig cfg;
  cfg.max_unflushed_bytes = 3 * kLogRecordBytes;
  StreamLog log(cfg);
  EXPECT_TRUE(log.try_append(0, rec_of(0), kUnroutedDst, kUnroutedDst));
  EXPECT_TRUE(log.try_append(0, rec_of(1), kUnroutedDst, kUnroutedDst));
  EXPECT_TRUE(log.try_append(0, rec_of(2), kUnroutedDst, kUnroutedDst));
  // Over the unflushed bound: refused and counted.
  EXPECT_FALSE(log.try_append(0, rec_of(3), kUnroutedDst, kUnroutedDst));
  EXPECT_EQ(log.stats().backpressure_hits, 1u);
  log.flush(0);
  auto off = log.try_append(0, rec_of(3), kUnroutedDst, kUnroutedDst);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(*off, 3u);
  // append() self-flushes: it always succeeds and offsets stay dense.
  for (std::uint64_t i = 4; i < 50; ++i) {
    EXPECT_EQ(log.append(0, rec_of(i)), i);
  }
  EXPECT_GT(log.stats().backpressure_hits, 1u);
}

TEST(StreamLog, SubRecordBackpressureBoundIsClamped) {
  IngestConfig cfg;
  cfg.max_unflushed_bytes = 1;  // below one record: would livelock raw
  StreamLog log(cfg);
  // append() must still terminate (the bound is clamped to one record).
  EXPECT_EQ(log.append(0, rec_of(0)), 0u);
  EXPECT_EQ(log.append(0, rec_of(1)), 1u);
}

TEST(StreamLog, ConcurrentAppendersGetUniqueDenseOffsets) {
  IngestConfig cfg;
  cfg.segment_bytes = 16 * kLogRecordBytes;
  StreamLog log(cfg);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 500;
  std::vector<std::vector<std::uint64_t>> offsets(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        offsets[t].push_back(log.append(0, rec_of(i)));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> all;
  for (const auto& v : offsets) {
    for (auto o : v) EXPECT_TRUE(all.insert(o).second) << "offset " << o;
    // Each appender's own offsets are strictly increasing.
    for (std::size_t i = 1; i < v.size(); ++i) EXPECT_LT(v[i - 1], v[i]);
  }
  EXPECT_EQ(all.size(), kThreads * kPer);
  EXPECT_EQ(*all.rbegin(), kThreads * kPer - 1);
  EXPECT_EQ(log.end_offset(0), kThreads * kPer);
}

TEST(StreamLog, FileBackendOpenRecoversAcrossInstances) {
  const std::string dir = temp_dir("recover");
  std::filesystem::remove_all(dir);
  IngestConfig cfg;
  cfg.backend = SegmentBackend::kFile;
  cfg.dir = dir;
  cfg.partitions = 2;
  cfg.segment_bytes = 8 * kLogRecordBytes;
  {
    StreamLog log(cfg);
    for (std::uint64_t i = 0; i < 30; ++i) log.append(0, rec_of(i));
    for (std::uint64_t i = 0; i < 5; ++i) {
      log.append(1, rec_of(1000 + i, Side::kS));
    }
    log.flush_all();
  }  // "process" ends
  auto log = StreamLog::open(cfg);
  ASSERT_NE(log, nullptr);
  EXPECT_EQ(log->end_offset(0), 30u);
  EXPECT_EQ(log->end_offset(1), 5u);
  std::vector<LogRecord> got;
  EXPECT_EQ(log->read(0, 28, 10, got), 2u);
  EXPECT_EQ(got[0].rec.seq, 28u);
  EXPECT_EQ(got[1].rec.seq, 29u);
  got.clear();
  EXPECT_EQ(log->read(1, 0, 10, got), 5u);
  EXPECT_EQ(got[0].rec.seq, 1000u);
  EXPECT_EQ(got[0].rec.side, Side::kS);
  // The reopened log keeps appending where the old one stopped.
  EXPECT_EQ(log->append(0, rec_of(30)), 30u);
  std::filesystem::remove_all(dir);
}

TEST(StreamLog, FileTruncationUnlinksSegmentFiles) {
  const std::string dir = temp_dir("unlink");
  std::filesystem::remove_all(dir);
  IngestConfig cfg;
  cfg.backend = SegmentBackend::kFile;
  cfg.dir = dir;
  cfg.segment_bytes = 4 * kLogRecordBytes;
  StreamLog log(cfg);
  for (std::uint64_t i = 0; i < 20; ++i) log.append(0, rec_of(i));
  const auto count_files = [&] {
    std::size_t n = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      (void)e;
      ++n;
    }
    return n;
  };
  const std::size_t before = count_files();
  EXPECT_EQ(log.truncate_before(0, 12), 12u);
  EXPECT_EQ(count_files(), before - 3);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fastjoin
