// ConsumerCursor: poll/commit/seek semantics over a StreamLog,
// including the position snap when retention truncates under a slow
// consumer.
#include <gtest/gtest.h>

#include <vector>

#include "ingest/cursor.hpp"

namespace fastjoin {
namespace {

Record rec_of(std::uint64_t i) {
  Record r;
  r.key = i;
  r.seq = i;
  r.ts = static_cast<SimTime>(i);
  r.side = Side::kR;
  return r;
}

TEST(ConsumerCursor, PollAdvancesAndStopsAtEnd) {
  IngestConfig cfg;
  StreamLog log(cfg);
  for (std::uint64_t i = 0; i < 10; ++i) log.append(0, rec_of(i));
  ConsumerCursor cur(log, "c0");
  EXPECT_EQ(cur.name(), "c0");
  EXPECT_EQ(cur.lag(0), 10u);

  std::vector<LogRecord> out;
  EXPECT_EQ(cur.poll(0, 4, out), 4u);
  EXPECT_EQ(cur.position(0), 4u);
  EXPECT_EQ(out.back().offset, 3u);
  EXPECT_EQ(cur.poll(0, 100, out), 6u);
  EXPECT_EQ(cur.position(0), 10u);
  EXPECT_EQ(cur.lag(0), 0u);
  EXPECT_EQ(cur.poll(0, 4, out), 0u);  // caught up
  // New appends become visible to the same cursor.
  log.append(0, rec_of(10));
  EXPECT_EQ(cur.lag(0), 1u);
  EXPECT_EQ(cur.poll(0, 4, out), 1u);
  EXPECT_EQ(out.back().offset, 10u);
}

TEST(ConsumerCursor, CommitIsClampedToPosition) {
  IngestConfig cfg;
  StreamLog log(cfg);
  for (std::uint64_t i = 0; i < 10; ++i) log.append(0, rec_of(i));
  ConsumerCursor cur(log, "c");
  std::vector<LogRecord> out;
  cur.poll(0, 6, out);
  EXPECT_EQ(cur.committed(0), 0u);
  cur.commit(0, 4);
  EXPECT_EQ(cur.committed(0), 4u);
  // Commit beyond position clamps to position; commit backwards is a
  // no-op (the mark is monotone).
  cur.commit(0, 100);
  EXPECT_EQ(cur.committed(0), 6u);
  cur.commit(0, 2);
  EXPECT_EQ(cur.committed(0), 6u);
  cur.poll(0, 100, out);
  cur.commit(0);
  EXPECT_EQ(cur.committed(0), 10u);
}

TEST(ConsumerCursor, SeekBackRereadsUncommittedWindow) {
  IngestConfig cfg;
  StreamLog log(cfg);
  for (std::uint64_t i = 0; i < 8; ++i) log.append(0, rec_of(i));
  ConsumerCursor cur(log, "c");
  std::vector<LogRecord> out;
  cur.poll(0, 5, out);
  cur.commit(0, 3);
  // Crash-restart pattern: rewind to the committed mark and re-read the
  // [committed, position) window.
  cur.seek(0, cur.committed(0));
  out.clear();
  EXPECT_EQ(cur.poll(0, 100, out), 5u);
  EXPECT_EQ(out.front().offset, 3u);
  EXPECT_EQ(out.back().offset, 7u);
}

TEST(ConsumerCursor, PollSnapsAboveTruncation) {
  IngestConfig cfg;
  cfg.segment_bytes = 4 * kLogRecordBytes;
  StreamLog log(cfg);
  for (std::uint64_t i = 0; i < 20; ++i) log.append(0, rec_of(i));
  ConsumerCursor cur(log, "slow");
  log.truncate_before(0, 8);  // drops [0,8) while the cursor is at 0
  std::vector<LogRecord> out;
  EXPECT_EQ(cur.poll(0, 3, out), 3u);
  EXPECT_EQ(out.front().offset, 8u);  // snapped past the gone records
  EXPECT_EQ(cur.position(0), 11u);
}

TEST(ConsumerCursor, CommitAllCoversEveryPartition) {
  IngestConfig cfg;
  cfg.partitions = 3;
  StreamLog log(cfg);
  for (std::uint32_t p = 0; p < 3; ++p) {
    for (std::uint64_t i = 0; i <= p; ++i) log.append(p, rec_of(i));
  }
  ConsumerCursor cur(log, "c");
  std::vector<LogRecord> out;
  for (std::uint32_t p = 0; p < 3; ++p) cur.poll(p, 100, out);
  cur.commit_all();
  for (std::uint32_t p = 0; p < 3; ++p) {
    EXPECT_EQ(cur.committed(p), p + 1u);
  }
}

}  // namespace
}  // namespace fastjoin
