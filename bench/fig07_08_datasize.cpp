// Figures 7 & 8 — average throughput / latency vs dataset size
// (nominal 10..70 GB, mapped to simulated tuple counts).
//
// Usage: fig07_08_datasize [scale=1.0] [instances=48] [theta=2.2]
#include <iostream>

#include "common/config.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  PaperDefaults defaults;
  defaults.instances =
      static_cast<std::uint32_t>(cli.get_int("instances", 48));
  defaults.theta = cli.get_double("theta", 2.2);

  banner("Figures 7 & 8",
         "average throughput and latency vs dataset size (nominal GB)");

  const std::vector<SystemKind> systems{SystemKind::kFastJoin,
                                        SystemKind::kBiStreamContRand,
                                        SystemKind::kBiStream};
  Table tput({"GB", "tuples", "FastJoin", "BiStream-ContRand",
              "BiStream"});
  Table lat({"GB", "tuples", "FastJoin", "BiStream-ContRand",
             "BiStream"});

  for (double gb : {10.0, 30.0, 50.0, 70.0}) {
    const auto tuples = static_cast<std::int64_t>(
        static_cast<double>(dataset_scale().tuples_for_gb(gb)) * scale);
    std::vector<Cell> trow{gb, tuples};
    std::vector<Cell> lrow{gb, tuples};
    for (auto sys : systems) {
      const auto rep = run_didi(sys, defaults, gb, scale);
      trow.emplace_back(rep.mean_throughput);
      lrow.emplace_back(rep.mean_latency_ms);
    }
    tput.add_row(std::move(trow));
    lat.add_row(std::move(lrow));
  }

  std::cout << "\n-- Fig 7: average throughput (results/s) --\n";
  tput.print(std::cout);
  std::cout << "\n-- Fig 8: average latency (ms) --\n";
  lat.print(std::cout);
  std::cout << "(paper: dataset size does not change the ordering; "
               "FastJoin's key-selection is least effective on the "
               "smallest dataset where instances hold few keys)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
