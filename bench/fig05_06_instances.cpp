// Figures 5 & 6 — average throughput / latency vs number of join
// instances (paper sweeps 16..64; largest FastJoin advantage at 16).
//
// Usage: fig05_06_instances [scale=1.0] [theta=2.2] [gb=30]
#include <iostream>

#include "common/config.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  PaperDefaults defaults;
  defaults.theta = cli.get_double("theta", 2.2);
  defaults.dataset_gb = cli.get_double("gb", 30.0);

  banner("Figures 5 & 6",
         "average throughput and latency vs number of join instances");

  const std::vector<SystemKind> systems{SystemKind::kFastJoin,
                                        SystemKind::kBiStreamContRand,
                                        SystemKind::kBiStream};
  Table tput({"instances", "FastJoin", "BiStream-ContRand", "BiStream"});
  Table lat({"instances", "FastJoin", "BiStream-ContRand", "BiStream"});

  for (std::uint32_t n : {16u, 32u, 48u, 64u}) {
    defaults.instances = n;
    std::vector<Cell> trow{static_cast<std::int64_t>(n)};
    std::vector<Cell> lrow{static_cast<std::int64_t>(n)};
    for (auto sys : systems) {
      const auto rep =
          run_didi(sys, defaults, defaults.dataset_gb, scale);
      trow.emplace_back(rep.mean_throughput);
      lrow.emplace_back(rep.mean_latency_ms);
    }
    tput.add_row(std::move(trow));
    lat.add_row(std::move(lrow));
  }

  std::cout << "\n-- Fig 5: average throughput (results/s) --\n";
  tput.print(std::cout);
  std::cout << "\n-- Fig 6: average latency (ms) --\n";
  lat.print(std::cout);
  std::cout << "(paper: FastJoin's margin is largest at 16 instances — "
               "+186%/+258% throughput — and the systems converge as "
               "instances increase)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
