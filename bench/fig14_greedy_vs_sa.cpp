// Figure 14 — GreedyFit vs SAFit: the end-to-end processing latency of
// FastJoin under either key-selection algorithm (paper: nearly equal,
// hence GreedyFit is good enough), plus an offline quality/runtime
// comparison on captured selection instances.
//
// Usage: fig14_greedy_vs_sa [scale=1.0] [instances=48] [theta=2.2]
#include <chrono>
#include <iostream>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/optimal_fit.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  PaperDefaults defaults;
  defaults.instances =
      static_cast<std::uint32_t>(cli.get_int("instances", 48));
  defaults.theta = cli.get_double("theta", 2.2);

  banner("Figure 14", "FastJoin latency with GreedyFit vs SAFit");

  const auto greedy = run_didi(SystemKind::kFastJoin, defaults,
                               defaults.dataset_gb, scale);
  const auto sa = run_didi(SystemKind::kFastJoinSA, defaults,
                           defaults.dataset_gb, scale);
  print_summary({"FastJoin (GreedyFit)", "FastJoin (SAFit)"},
                {greedy, sa});
  std::cout << "latency ratio GreedyFit/SAFit = "
            << (sa.mean_latency_ms != 0
                    ? greedy.mean_latency_ms / sa.mean_latency_ms
                    : 0.0)
            << " (paper: ~1.0 — the two algorithms perform nearly the "
               "same)\n";

  // Offline: selection quality and solver runtime on synthetic
  // instances (complements Section IV-A's complexity discussion).
  std::cout << "\n-- offline key-selection comparison (random "
               "instances) --\n";
  Table t({"keys", "greedy benefit", "sa benefit", "dp benefit",
           "greedy us", "sa us"});
  Xoshiro256 rng(7);
  for (std::size_t n : {50, 200, 1000, 5000}) {
    KeySelectionInput in;
    std::uint64_t ssum = 0, qsum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      KeyLoad k{static_cast<KeyId>(i), 1 + rng.next_below(500),
                rng.next_below(300)};
      ssum += k.stored;
      qsum += k.queued;
      in.keys.push_back(k);
    }
    in.src = {ssum, qsum};
    in.dst = {ssum / 20, qsum / 20};

    const auto t0 = std::chrono::steady_clock::now();
    const auto g = greedy_fit(in);
    const auto t1 = std::chrono::steady_clock::now();
    const auto s = sa_fit(in);
    const auto t2 = std::chrono::steady_clock::now();
    const auto dp = optimal_fit_dp(in, 5000);

    auto us = [](auto a, auto b) {
      return std::chrono::duration_cast<std::chrono::microseconds>(b - a)
                 .count() /
             1.0;
    };
    t.add_row({static_cast<std::int64_t>(n), g.total_benefit,
               s.total_benefit, dp.total_benefit, us(t0, t1), us(t1, t2)});
  }
  t.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
