// Ablation — probe-cost model: the paper's load model reads probing as
// a nested-loop scan (cost ~ |R_i|), while BiStream-style instances use
// an in-memory hash index (cost ~ matches). This bench runs the
// FastJoin-vs-BiStream comparison under both cost families to show the
// conclusion is not an artifact of the execution model.
//
// Usage: ablation_cost_model [scale=1.0]
#include <iostream>

#include "common/config.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  PaperDefaults defaults;

  banner("Ablation", "hash-index vs nested-loop probe cost model");

  Table t({"cost model", "system", "throughput", "latency(ms)",
           "mean LI", "migrations"});
  for (auto kind : {ProbeCostKind::kHashIndex, ProbeCostKind::kNestedLoop}) {
    const char* kind_name =
        kind == ProbeCostKind::kHashIndex ? "hash-index" : "nested-loop";
    for (auto sys : {SystemKind::kFastJoin, SystemKind::kBiStream}) {
      const auto rep = run_didi(
          sys, defaults, defaults.dataset_gb, scale, 1,
          [&](EngineConfig& cfg) {
            cfg.cost.kind = kind;
            if (kind == ProbeCostKind::kNestedLoop) {
              // Under the literal Eq. 1 reading a probe scans the whole
              // store, so the scan term must carry the load (the
              // per-match term is ignored by this cost family).
              cfg.cost.probe_base = 50 * kNanosPerMicro;
              cfg.cost.probe_per_scan = 300.0;
            }
          });
      t.add_row({kind_name, system_name(sys), rep.mean_throughput,
                 rep.mean_latency_ms, rep.mean_li,
                 static_cast<std::int64_t>(rep.migrations)});
    }
  }
  t.print(std::cout);
  std::cout << "(expected: FastJoin > BiStream under both families; the "
               "nested-loop model ties load to |R_i| exactly as the "
               "paper's Eq. 1 assumes)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
