// Microbenchmarks (google-benchmark) — key-selection algorithms.
// Complexity claims of Section IV-A: GreedyFit O(K log K), SAFit fixed
// iteration budget, DP knapsack O(K * resolution).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/greedy_fit.hpp"
#include "core/optimal_fit.hpp"
#include "core/sa_fit.hpp"

namespace fastjoin {
namespace {

KeySelectionInput make_input(std::size_t keys, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  KeySelectionInput in;
  std::uint64_t ssum = 0, qsum = 0;
  in.keys.reserve(keys);
  for (std::size_t i = 0; i < keys; ++i) {
    KeyLoad k{static_cast<KeyId>(i), 1 + rng.next_below(1000),
              rng.next_below(500)};
    ssum += k.stored;
    qsum += k.queued;
    in.keys.push_back(k);
  }
  in.src = {ssum, qsum};
  in.dst = {ssum / 25, qsum / 25};
  return in;
}

void BM_GreedyFit(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_fit(in));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyFit)->Range(64, 1 << 16)->Complexity(benchmark::oNLogN);

void BM_SAFit(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)), 2);
  SAFitParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sa_fit(in, params));
  }
}
BENCHMARK(BM_SAFit)->Range(64, 1 << 14);

void BM_OptimalDp(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_fit_dp(in, 2000));
  }
}
BENCHMARK(BM_OptimalDp)->Range(64, 1 << 12);

void BM_MigrationBenefit(benchmark::State& state) {
  const InstanceLoad src{100'000, 50'000};
  const InstanceLoad dst{10'000, 5'000};
  const KeyLoad k{42, 1'000, 300};
  for (auto _ : state) {
    benchmark::DoNotOptimize(migration_benefit(src, dst, k));
  }
}
BENCHMARK(BM_MigrationBenefit);

}  // namespace
}  // namespace fastjoin

BENCHMARK_MAIN();
