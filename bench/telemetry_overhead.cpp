// Perf — telemetry overhead: the instrumented live runtime vs the same
// workload compiled with FASTJOIN_NO_TELEMETRY.
//
// The telemetry subsystem's contract is "always on": counters on the
// producer batch path, 1-in-64 latency sampling in the workers, flight
// events per batch and per control message, registry sampling in the
// monitor. That is only tenable if the instrumented build keeps >= 97%
// of the stripped build's throughput on the multi-producer live
// workload. This bench proves it across two builds of this same file:
//
//   build-notel (cmake -DFASTJOIN_NO_TELEMETRY=ON):
//     runs the workload rounds and writes the per-round records/s to
//     `baseline=` (default telemetry_baseline.txt).
//   default build:
//     runs the identical rounds, reads the baseline file, and writes
//     BENCH_telemetry_overhead.json with both medians and the ratio
//     (target >= 0.97). It also runs a chaos leg — skewed feed,
//     checkpoints, ingest replay, one induced crash — and exports the
//     migration trace (trace_migration.json, Perfetto-loadable) and a
//     flight-recorder dump (flight_sample.dump) as sample artifacts.
//
// scripts/bench_telemetry_overhead.sh builds both and runs them
// back-to-back. Usage: telemetry_overhead [scale=1.0] [records=120000]
//   [rounds=5] [baseline=telemetry_baseline.txt]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "datagen/keygen.hpp"
#include "runtime/live_engine.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"
#include "telemetry/telemetry.hpp"

namespace fastjoin::bench {
namespace {

/// Disjoint-keyspace per-producer traces, same construction as
/// live_throughput so the two benches measure the same data plane.
std::vector<std::vector<Record>> make_traces(int n_producers,
                                             std::uint64_t total,
                                             int keys_per_producer,
                                             double zipf) {
  std::vector<std::vector<Record>> traces(n_producers);
  const std::uint64_t per = total / n_producers;
  for (int p = 0; p < n_producers; ++p) {
    KeyStreamSpec spec;
    spec.num_keys = keys_per_producer;
    spec.zipf_s = zipf;
    spec.seed = 2000 + static_cast<std::uint64_t>(p);
    KeyGenerator gen(spec);
    Xoshiro256 rng(spec.seed ^ 0xfeed);
    auto& out = traces[p];
    out.reserve(per);
    std::uint64_t r_seq = 0, s_seq = 0;
    for (std::uint64_t i = 0; i < per; ++i) {
      Record rec;
      rec.side = rng.next_below(2) ? Side::kS : Side::kR;
      rec.key = gen() * static_cast<KeyId>(n_producers) +
                static_cast<KeyId>(p);
      rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
      rec.ts = i * n_producers + static_cast<std::uint64_t>(p);
      rec.payload = rec.ts;
      out.push_back(rec);
    }
  }
  return traces;
}

/// One multi-producer laned run; returns records/s over push + drain.
double run_round(const std::vector<std::vector<Record>>& traces,
                 std::uint32_t instances) {
  LiveConfig cfg;
  cfg.instances = instances;
  cfg.balancer = true;
  cfg.data_plane = DataPlane::kLaned;
  LiveEngine engine(cfg);
  engine.start();

  std::uint64_t total = 0;
  for (const auto& t : traces) total += t.size();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(traces.size());
  for (const auto& trace : traces) {
    producers.emplace_back([&engine, &trace] {
      const int id = engine.register_producer();
      constexpr std::size_t kBatch = 256;
      for (std::size_t i = 0; i < trace.size(); i += kBatch) {
        const std::size_t n = std::min(kBatch, trace.size() - i);
        engine.push_batch(trace.data() + i, n, id);
      }
    });
  }
  for (auto& t : producers) t.join();
  (void)engine.finish();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(total) / wall;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

[[maybe_unused]] std::string json_array(const std::vector<double>& v) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    os << (i ? ", " : "") << static_cast<std::uint64_t>(v[i]);
  }
  os << ']';
  return os.str();
}

#ifndef FASTJOIN_NO_TELEMETRY
/// Chaos leg: skewed feed + checkpoints + ingest replay + one induced
/// crash, then export the migration trace and a flight-recorder dump.
/// Returns the trace JSON (also written to trace_migration.json).
std::string run_chaos_leg(std::uint64_t records) {
  telemetry::TraceLog::global().clear();  // artifact holds only this leg

  LiveConfig cfg;
  cfg.instances = 4;
  cfg.balancer = true;
  cfg.data_plane = DataPlane::kLaned;
  cfg.monitor_period = std::chrono::milliseconds(10);
  cfg.min_heaviest_load = 50.0;  // migrate eagerly on the skewed feed
  cfg.checkpoint_period = std::chrono::milliseconds(30);
  cfg.ingest.enabled = true;
  cfg.ingest.replay = true;
  LiveEngine engine(cfg);
  engine.start();

  const auto traces = make_traces(2, records, 400, /*zipf=*/1.2);
  std::vector<std::thread> producers;
  for (std::size_t pi = 0; pi < traces.size(); ++pi) {
    const auto& trace = traces[pi];
    const bool saboteur = pi == 0;
    producers.emplace_back([&engine, &trace, saboteur] {
      const int id = engine.register_producer();
      constexpr std::size_t kBatch = 256;
      for (std::size_t i = 0; i < trace.size(); i += kBatch) {
        if (saboteur && i * 2 >= trace.size() &&
            (i - kBatch) * 2 < trace.size()) {
          engine.crash(Side::kR, 0);  // mid-feed: respawn + replay
        }
        const std::size_t n = std::min(kBatch, trace.size() - i);
        engine.push_batch(trace.data() + i, n, id);
        if (i % (kBatch * 16) == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  // Let the monitor finish in-flight migrations/checkpoints.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const LiveStats stats = engine.finish();

  std::ostringstream trace;
  telemetry::TraceLog::global().write_chrome_trace(trace);
  telemetry::TraceLog::global().write_chrome_trace(
      std::string("trace_migration.json"));
  telemetry::flight_dump(std::string("flight_sample.dump"));
  std::cout << "chaos leg: " << stats.migrations << " migrations, "
            << stats.crashes << " crashes, " << stats.recoveries
            << " recoveries; wrote trace_migration.json + "
               "flight_sample.dump\n";
  return trace.str();
}
#endif  // !FASTJOIN_NO_TELEMETRY

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  const auto records = static_cast<std::uint64_t>(
      cli.get_int("records", 120'000) * scale);
  const auto rounds =
      static_cast<int>(cli.get_int("rounds", 5));
  const std::string baseline_path =
      cli.get_str("baseline", "telemetry_baseline.txt");

#ifdef FASTJOIN_NO_TELEMETRY
  banner("Perf", "telemetry overhead — NO_TELEMETRY baseline leg");
#else
  banner("Perf", "telemetry overhead — instrumented leg");
#endif
  std::cout << "records/round=" << records << " rounds=" << rounds
            << " producers=4 instances=8\n\n";

  const auto traces = make_traces(4, records, 500, /*zipf=*/1.0);
  (void)run_round(traces, 8);  // warmup, not recorded
  std::vector<double> rps;
  for (int r = 0; r < rounds; ++r) {
    rps.push_back(run_round(traces, 8));
    std::cout << "  round " << r << ": "
              << static_cast<std::uint64_t>(rps.back()) << " rec/s\n";
  }
  const double med = median(rps);
  std::cout << "median: " << static_cast<std::uint64_t>(med)
            << " rec/s\n";

#ifdef FASTJOIN_NO_TELEMETRY
  std::ofstream base(baseline_path);
  for (double v : rps) base << v << "\n";
  std::cout << "wrote baseline " << baseline_path << "\n";
  return base ? 0 : 1;
#else
  // Telemetry must demonstrably have been on during the measured runs.
  const std::uint64_t flight_events =
      telemetry::flight_recorded_total();

  std::vector<double> base_rps;
  {
    std::ifstream base(baseline_path);
    double v = 0.0;
    while (base >> v) base_rps.push_back(v);
  }
  const double base_med = median(base_rps);
  const bool have_baseline = !base_rps.empty();
  const double ratio = have_baseline ? med / base_med : 0.0;

  const std::string trace_json = run_chaos_leg(records / 2);
  const char* kSpans[] = {"migrate",  "extract",    "hold",
                          "hold_ack", "route_publish", "transfer",
                          "checkpoint", "respawn",  "replay"};
  bool all_spans = true;
  std::ostringstream span_flags;
  for (std::size_t i = 0; i < std::size(kSpans); ++i) {
    const bool found =
        trace_json.find(std::string("\"name\": \"") + kSpans[i] +
                        "\"") != std::string::npos;
    // "absorb" appears unless that migration aborted; the required
    // phases above must all be present.
    all_spans = all_spans && found;
    span_flags << (i ? ", " : "") << '"' << kSpans[i]
               << "\": " << (found ? "true" : "false");
  }

  const bool pass = have_baseline && ratio >= 0.97;
  if (have_baseline) {
    std::cout << "\nbaseline median: "
              << static_cast<std::uint64_t>(base_med)
              << " rec/s  ratio: " << ratio << " (target >= 0.97)\n";
  } else {
    std::cout << "\nno baseline file (" << baseline_path
              << ") — run the FASTJOIN_NO_TELEMETRY build first "
                 "(scripts/bench_telemetry_overhead.sh does both)\n";
  }

  std::ostringstream workload;
  workload << "records=" << records << " rounds=" << rounds
           << " producers=4 instances=8 zipf=1.0";
  std::ofstream json("BENCH_telemetry_overhead.json");
  json << "{\n  \"bench\": \"telemetry_overhead\",\n  "
       << json_meta(workload.str()) << ",\n"
       << "  \"records_per_round\": " << records << ",\n"
       << "  \"instrumented_rps\": " << json_array(rps) << ",\n"
       << "  \"instrumented_median_rps\": "
       << static_cast<std::uint64_t>(med) << ",\n"
       << "  \"baseline_rps\": " << json_array(base_rps) << ",\n"
       << "  \"baseline_median_rps\": "
       << static_cast<std::uint64_t>(base_med) << ",\n"
       << "  \"throughput_ratio\": " << ratio << ",\n"
       << "  \"target_ratio\": 0.97,\n"
       << "  \"flight_events_recorded\": " << flight_events << ",\n"
       << "  \"trace_spans_present\": {" << span_flags.str() << "},\n"
       << "  \"all_migration_spans_present\": "
       << (all_spans ? "true" : "false") << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "wrote BENCH_telemetry_overhead.json\n";
  return (pass && all_spans) || scale < 1.0 ? 0 : 1;
#endif
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) {
  return fastjoin::bench::run(argc, argv);
}
