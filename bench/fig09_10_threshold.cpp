// Figures 9 & 10 — influence of the load-imbalance threshold Theta on
// FastJoin's throughput and latency (baselines shown for reference;
// Theta does not affect them).
//
// Usage: fig09_10_threshold [scale=1.0] [instances=48] [gb=30]
#include <iostream>

#include "common/config.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  PaperDefaults defaults;
  defaults.instances =
      static_cast<std::uint32_t>(cli.get_int("instances", 48));
  defaults.dataset_gb = cli.get_double("gb", 30.0);

  banner("Figures 9 & 10",
         "FastJoin throughput and latency vs threshold Theta");

  // Baselines once (Theta-independent).
  const auto contrand = run_didi(SystemKind::kBiStreamContRand, defaults,
                                 defaults.dataset_gb, scale);
  const auto bistream = run_didi(SystemKind::kBiStream, defaults,
                                 defaults.dataset_gb, scale);

  Table t({"theta", "FastJoin tput", "FastJoin lat(ms)", "migrations",
           "mean LI"});
  for (double theta : {1.2, 2.2, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    defaults.theta = theta;
    const auto rep = run_didi(SystemKind::kFastJoin, defaults,
                              defaults.dataset_gb, scale);
    t.add_row({theta, rep.mean_throughput, rep.mean_latency_ms,
               static_cast<std::int64_t>(rep.migrations), rep.mean_li});
  }
  t.print(std::cout);
  std::cout << "\nreference: BiStream-ContRand tput="
            << contrand.mean_throughput
            << " lat=" << contrand.mean_latency_ms
            << "ms; BiStream tput=" << bistream.mean_throughput
            << " lat=" << bistream.mean_latency_ms << "ms\n";
  std::cout << "(paper: mild optimum near Theta = 2.2 — too low churns, "
               "too high never balances; FastJoin beats both baselines "
               "at every Theta)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
