// Ablation — the phi signal behind the load model L_i = |R_i| * phi_si:
// the paper's literal "queue length", a decayed incoming-rate counter,
// or the hybrid of both (this repo's default).
//
// Usage: ablation_phi_signal [scale=1.0]
#include <iostream>

#include "common/config.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  PaperDefaults defaults;

  banner("Ablation",
         "phi signal for the load model (queue vs rate vs hybrid)");

  Table t({"phi signal", "throughput", "latency(ms)", "mean LI",
           "migrations"});
  const struct {
    const char* name;
    PhiSignal phi;
  } signals[] = {
      {"hybrid (default)", PhiSignal::kHybrid},
      {"queue only (paper literal)", PhiSignal::kQueueOnly},
      {"rate only", PhiSignal::kRateOnly},
  };
  for (const auto& sig : signals) {
    const auto rep = run_didi(
        SystemKind::kFastJoin, defaults, defaults.dataset_gb, scale, 1,
        [&](EngineConfig& cfg) { cfg.phi_signal = sig.phi; });
    t.add_row({std::string(sig.name), rep.mean_throughput,
               rep.mean_latency_ms, rep.mean_li,
               static_cast<std::int64_t>(rep.migrations)});
  }
  t.print(std::cout);
  std::cout << "(queue-only reads zero off saturation, so its LI floors "
               "and its migrations become erratic; the hybrid keeps the "
               "signal meaningful in both regimes)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
