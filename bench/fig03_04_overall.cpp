// Figures 3 & 4 — overall comparison on the ride-hailing workload:
// real-time throughput (Fig. 3) and processing latency (Fig. 4) of
// FastJoin vs BiStream-ContRand vs BiStream.
// Defaults: 48 instances, Theta = 2.2, 30 GB (paper Section VI-B).
//
// Usage: fig03_04_overall [scale=1.0] [instances=48] [theta=2.2] [gb=30]
#include <fstream>
#include <iostream>

#include "common/config.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  PaperDefaults defaults;
  defaults.instances =
      static_cast<std::uint32_t>(cli.get_int("instances", 48));
  defaults.theta = cli.get_double("theta", 2.2);
  defaults.dataset_gb = cli.get_double("gb", 30.0);

  banner("Figures 3 & 4",
         "real-time throughput and latency: FastJoin vs "
         "BiStream-ContRand vs BiStream (DiDi workload)");

  const std::vector<SystemKind> systems{SystemKind::kFastJoin,
                                        SystemKind::kBiStreamContRand,
                                        SystemKind::kBiStream};
  std::vector<std::string> names;
  std::vector<RunReport> reports;
  for (auto sys : systems) {
    names.emplace_back(system_name(sys));
    reports.push_back(
        run_didi(sys, defaults, defaults.dataset_gb, scale));
  }

  std::vector<TimeSeries> tput, lat;
  for (const auto& r : reports) {
    tput.push_back(r.throughput_ts);
    lat.push_back(r.latency_ts);
  }
  print_series("Fig 3: throughput over time (results/s)", names, tput, 0,
               kNanosPerSec, reports[0].feed_end);
  print_series("Fig 4: mean latency over time (ms)", names, lat, 0,
               kNanosPerSec, reports[0].feed_end);
  print_summary(names, reports);

  const auto& fj = reports[0];
  const auto& cr = reports[1];
  const auto& bs = reports[2];
  std::cout << "\nFastJoin vs BiStream-ContRand: throughput "
            << improvement_pct(fj.mean_throughput, cr.mean_throughput)
            << "% (paper: +16%), latency "
            << improvement_pct(fj.mean_latency_ms, cr.mean_latency_ms)
            << "% (paper: -15.3%)\n";
  std::cout << "FastJoin vs BiStream:          throughput "
            << improvement_pct(fj.mean_throughput, bs.mean_throughput)
            << "% (paper: +31.7%), latency "
            << improvement_pct(fj.mean_latency_ms, bs.mean_latency_ms)
            << "% (paper: -17.5%)\n";

  std::ofstream trace("trace_sim_migrations.json");
  write_migration_trace(trace, fj.migration_log);
  std::cout << "wrote trace_sim_migrations.json (" << fj.migration_log.size()
            << " migrations; load at https://ui.perfetto.dev)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
