// Microbenchmarks (google-benchmark) — data-path primitives: hashing,
// zipf sampling, store insert/probe, and the discrete-event core.
#include <benchmark/benchmark.h>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "datagen/zipf.hpp"
#include "engine/join_store.hpp"
#include "simnet/simulator.hpp"

namespace fastjoin {
namespace {

void BM_Mix64(benchmark::State& state) {
  std::uint64_t x = 12345;
  for (auto _ : state) {
    x = mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_Murmur3(benchmark::State& state) {
  std::vector<char> buf(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(murmur3_64(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Murmur3)->Range(8, 4096);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution z(static_cast<std::uint64_t>(state.range(0)), 1.1);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Range(1 << 10, 1 << 24);

void BM_StoreInsert(benchmark::State& state) {
  Xoshiro256 rng(2);
  JoinStore store;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    StoredTuple st;
    st.seq = seq++;
    store.insert(rng.next_below(100'000), st);
  }
}
BENCHMARK(BM_StoreInsert);

void BM_StoreProbe(benchmark::State& state) {
  Xoshiro256 rng(3);
  JoinStore store;
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    StoredTuple st;
    st.seq = i;
    store.insert(rng.next_below(10'000), st);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.find(rng.next_below(10'000)));
  }
}
BENCHMARK(BM_StoreProbe);

void BM_SimulatorEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < 10'000) sim.schedule_after(10, chain);
    };
    sim.schedule_at(0, chain);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventChurn);

}  // namespace
}  // namespace fastjoin

BENCHMARK_MAIN();
