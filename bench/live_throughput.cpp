// Perf — live data-plane throughput: lock-free laned plane vs the
// pre-optimization locked plane, measured in the same binary run.
//
// The paper's headline claim is sustained tuples/s under skew; the live
// runtime can only demonstrate it if the per-record cost is the join,
// not the plumbing. This bench sweeps instances × producers × skew and
// for every cell runs the same feed twice:
//   before: DataPlane::kLegacyLocked — every push() takes the global
//           route mutex, each delivery is a mutex+condvar queue push,
//           and every record reads the clock (latency_sample_every=1).
//   after:  DataPlane::kLaned — batched pushes against an immutable
//           routing snapshot into SPSC lanes, micro-batch dequeue with
//           doorbell parking when idle, and latency sampling adapted to
//           the feed size so the tail percentiles rest on enough
//           samples to be distinguishable (>= ~10k when the feed
//           allows; a 1-in-64 rate over a 120k feed left ~2k samples,
//           which collapsed p999 onto p99).
// Both runs must produce identical join results (exactly-once is not
// negotiable); the bench reports records/s and p99 latency, and writes
// BENCH_live_throughput.json with the before/after numbers and the
// speedup at the acceptance point (8 instances, multi-producer).
//
// Usage: live_throughput [scale=1.0] [records=120000]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "datagen/keygen.hpp"
#include "runtime/live_engine.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

/// Disjoint-keyspace per-producer traces (key = base * P + p, globally
/// unique timestamps) so the expected result set is independent of the
/// producer interleaving and both data planes must agree exactly.
std::vector<std::vector<Record>> make_traces(int n_producers,
                                             std::uint64_t total,
                                             int keys_per_producer,
                                             double zipf) {
  std::vector<std::vector<Record>> traces(n_producers);
  const std::uint64_t per = total / n_producers;
  for (int p = 0; p < n_producers; ++p) {
    KeyStreamSpec spec;
    spec.num_keys = keys_per_producer;
    spec.zipf_s = zipf;
    spec.seed = 1000 + static_cast<std::uint64_t>(p);
    KeyGenerator gen(spec);
    Xoshiro256 rng(spec.seed ^ 0xbeef);
    auto& out = traces[p];
    out.reserve(per);
    std::uint64_t r_seq = 0, s_seq = 0;
    for (std::uint64_t i = 0; i < per; ++i) {
      Record rec;
      rec.side = rng.next_below(2) ? Side::kS : Side::kR;
      rec.key = gen() * static_cast<KeyId>(n_producers) +
                static_cast<KeyId>(p);
      rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
      rec.ts = i * n_producers + static_cast<std::uint64_t>(p);
      rec.payload = rec.ts;
      out.push_back(rec);
    }
  }
  return traces;
}

struct RunResult {
  double rps = 0.0;
  double wall_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::uint64_t latency_n = 0;  ///< histogram sample count
  std::uint64_t results = 0;
  std::size_t migrations = 0;
};

/// Sampling rate that keeps the clock off the hot path but still feeds
/// the histogram ~10k observations, the floor below which p999 is just
/// p99 with extra steps.
std::uint32_t adapted_sample_every(std::uint64_t total) {
  constexpr std::uint64_t kWantSamples = 10'000;
  const std::uint64_t every = total / kWantSamples;
  return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(every, 1, 64));
}

RunResult run_once(DataPlane plane, std::uint32_t instances,
                   const std::vector<std::vector<Record>>& traces) {
  std::uint64_t total = 0;
  for (const auto& t : traces) total += t.size();

  LiveConfig cfg;
  cfg.instances = instances;
  cfg.balancer = true;
  cfg.data_plane = plane;
  // "Before" reproduces the pre-optimization behavior: a clock read per
  // record. "After" samples at a rate adapted to the feed size.
  cfg.latency_sample_every =
      plane == DataPlane::kLegacyLocked ? 1 : adapted_sample_every(total);
  LiveEngine engine(cfg);
  engine.start();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(traces.size());
  for (const auto& trace : traces) {
    producers.emplace_back([&engine, &trace, plane] {
      if (plane == DataPlane::kLegacyLocked) {
        // The pre-change API shape: one locked push per record.
        for (const auto& rec : trace) engine.push(rec);
      } else {
        const int id = engine.register_producer();
        constexpr std::size_t kBatch = 256;
        for (std::size_t i = 0; i < trace.size(); i += kBatch) {
          const std::size_t n = std::min(kBatch, trace.size() - i);
          engine.push_batch(trace.data() + i, n, id);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  const auto stats = engine.finish();  // includes the drain, fairly
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  RunResult r;
  r.wall_s = wall;
  r.rps = static_cast<double>(total) / wall;
  r.p50_us = stats.p50_latency_us;
  r.p99_us = stats.p99_latency_us;
  r.p999_us = stats.p999_latency_us;
  r.latency_n = stats.latency_samples;
  r.results = stats.results;
  r.migrations = stats.migrations;
  return r;
}

std::string json_run(const RunResult& r) {
  std::ostringstream os;
  os << "{\"records_per_sec\": " << static_cast<std::uint64_t>(r.rps)
     << ", \"wall_s\": " << r.wall_s << ", \"p50_latency_us\": "
     << r.p50_us << ", \"p99_latency_us\": " << r.p99_us
     << ", \"p999_latency_us\": " << r.p999_us
     << ", \"latency_samples\": " << r.latency_n
     << ", \"results\": " << r.results
     << ", \"migrations\": " << r.migrations << "}";
  return os.str();
}

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  const auto total = static_cast<std::uint64_t>(
      cli.get_int("records", 120'000) * scale);

  banner("Perf", "live data plane: locked baseline vs lock-free lanes");
  std::cout << "records/run=" << total
            << "  (override with records=N scale=X)\n\n";

  const std::uint32_t kInstances[] = {2, 8};
  const int kProducers[] = {1, 4};
  const double kSkews[] = {0.8, 1.2};

  Table t({"instances", "producers", "zipf", "before rec/s",
           "after rec/s", "speedup", "before p99 (us)",
           "after p99 (us)"});
  std::ostringstream cells;
  bool first = true;
  double accept_speedup = 0.0;  // worst multi-producer speedup @ 8 inst
  bool results_agree = true;

  for (const auto instances : kInstances) {
    for (const auto producers : kProducers) {
      for (const auto zipf : kSkews) {
        const auto traces =
            make_traces(producers, total, 500, zipf);
        const auto before =
            run_once(DataPlane::kLegacyLocked, instances, traces);
        const auto after =
            run_once(DataPlane::kLaned, instances, traces);
        if (before.results != after.results) {
          results_agree = false;
          std::cerr << "RESULT MISMATCH: legacy=" << before.results
                    << " laned=" << after.results << "\n";
        }
        const double speedup = after.rps / before.rps;
        if (instances == 8 && producers > 1) {
          accept_speedup = accept_speedup == 0.0
                               ? speedup
                               : std::min(accept_speedup, speedup);
        }
        t.add_row({static_cast<std::int64_t>(instances),
                   static_cast<std::int64_t>(producers), zipf,
                   before.rps, after.rps, speedup, before.p99_us,
                   after.p99_us});
        if (!first) cells << ",\n";
        first = false;
        cells << "    {\"instances\": " << instances
              << ", \"producers\": " << producers
              << ", \"zipf\": " << zipf << ",\n     \"before\": "
              << json_run(before) << ",\n     \"after\": "
              << json_run(after) << ",\n     \"speedup\": " << speedup
              << "}";
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nacceptance: multi-producer speedup @ 8 instances = "
            << accept_speedup << "x (target >= 3x), results "
            << (results_agree ? "identical" : "MISMATCH") << "\n";

  std::ostringstream workload;
  workload << "records=" << total
           << " instances={2,8} producers={1,4} zipf={0.8,1.2}";
  std::ofstream json("BENCH_live_throughput.json");
  json << "{\n  \"bench\": \"live_throughput\",\n  "
       << json_meta(workload.str()) << ",\n"
       << "  \"records_per_run\": " << total << ",\n"
       << "  \"results_identical\": "
       << (results_agree ? "true" : "false") << ",\n"
       << "  \"speedup_8_instances_multi_producer\": " << accept_speedup
       << ",\n  \"target_speedup\": 3.0,\n  \"cells\": [\n"
       << cells.str() << "\n  ]\n}\n";
  std::cout << "wrote BENCH_live_throughput.json\n";
  return results_agree && (accept_speedup >= 3.0 || scale < 1.0) ? 0 : 1;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) {
  return fastjoin::bench::run(argc, argv);
}
