// Perf — multi-process plane throughput vs the in-process laned plane.
//
// The multi-process plane buys crash isolation (workers are real
// processes; SIGKILL is survivable via StreamLog replay) and pays for
// it in syscalls: every record becomes one or two framed socket writes,
// and every match comes back over the same wire. This bench quantifies
// that tax. For W in {1, 2, 4, 8} it runs the same single-feed trace
// through
//   inproc:    LiveEngine, W instances, laned data plane — the tier-1
//              baseline the multi-process plane must match byte-for-byte
//              (tests/runtime/multiproc_test.cpp proves the byte
//              equality; here only counts travel, collect_matches=false,
//              so the wire carries the join, not the bench harness).
//   multiproc: MultiprocRouter + W forked workers over unix sockets,
//              periodic checkpoint rounds included — the configuration
//              the chaos tests run, not a stripped-down fast path.
// Both sides must report the same match count or the bench fails: a
// throughput number for a plane that lost records is not a number.
//
// Acceptance (ISSUE 8): multiproc >= 0.5x inproc at 4 workers. The
// ratio is recorded in the JSON either way — if the tax is worse than
// 2x on some host, the honest number is the useful one.
//
// Usage: multiproc_throughput [scale=1.0] [records=40000]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/config.hpp"
#include "datagen/keygen.hpp"
#include "runtime/live_engine.hpp"
#include "runtime/multiproc.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

std::vector<Record> make_trace(std::uint64_t seed, std::uint64_t total,
                               int num_keys, double zipf) {
  KeyStreamSpec spec;
  spec.num_keys = num_keys;
  spec.zipf_s = zipf;
  spec.seed = seed;
  KeyGenerator gen(spec);
  Xoshiro256 rng(seed ^ 0xbeef);
  std::vector<Record> out;
  out.reserve(total);
  std::uint64_t r_seq = 0, s_seq = 0;
  for (std::uint64_t i = 0; i < total; ++i) {
    Record rec;
    rec.side = rng.next_below(2) ? Side::kS : Side::kR;
    rec.key = gen();
    rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
    rec.ts = i;
    rec.payload = i;
    out.push_back(rec);
  }
  return out;
}

struct RunResult {
  double rps = 0.0;
  double wall_s = 0.0;
  std::uint64_t matches = 0;
  std::uint64_t checkpoints = 0;  ///< multiproc only
};

RunResult run_inproc(std::uint32_t instances,
                     const std::vector<Record>& trace) {
  LiveConfig cfg;
  cfg.instances = instances;
  cfg.balancer = false;
  LiveEngine engine(cfg);
  engine.start();
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& rec : trace) engine.push(rec);
  const auto stats = engine.finish();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  RunResult r;
  r.wall_s = wall;
  r.rps = static_cast<double>(trace.size()) / wall;
  r.matches = stats.results;
  return r;
}

RunResult run_multiproc(std::uint32_t workers,
                        const std::vector<Record>& trace) {
  MultiprocConfig cfg;
  cfg.workers = workers;
  cfg.worker_command = {"/proc/self/exe"};
  cfg.collect_matches = false;  // counts only: measure the join, not
                                // the result-shipping harness
  cfg.checkpoint_every = 5'000;
  MultiprocRouter router(std::move(cfg));
  std::string err;
  if (!router.start(&err)) {
    std::cerr << "multiproc start failed: " << err << "\n";
    std::exit(2);
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& rec : trace) router.publish(rec);
  if (!router.finish()) {
    std::cerr << "multiproc finish failed\n";
    std::exit(2);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto& st = router.stats();
  if (st.records_dropped != 0) {
    std::cerr << "multiproc dropped " << st.records_dropped
              << " records on a clean run\n";
    std::exit(2);
  }
  RunResult r;
  r.wall_s = wall;
  r.rps = static_cast<double>(trace.size()) / wall;
  r.matches = st.matches_total;
  r.checkpoints = st.checkpoints_completed;
  return r;
}

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  const auto total = static_cast<std::uint64_t>(
      cli.get_int("records", 40'000) * scale);

  banner("Perf",
         "multi-process plane (sockets + fork/exec) vs in-process lanes");
  std::cout << "records/run=" << total
            << "  (override with records=N scale=X)\n\n";

  const auto trace = make_trace(41, total, 400, 1.1);

  const std::uint32_t kWorkers[] = {1, 2, 4, 8};
  Table t({"workers", "inproc rec/s", "multiproc rec/s", "ratio",
           "matches", "checkpoints"});
  std::ostringstream cells;
  bool first = true;
  bool counts_agree = true;
  double ratio_at_4 = 0.0;

  for (const auto w : kWorkers) {
    const auto inproc = run_inproc(w, trace);
    const auto mp = run_multiproc(w, trace);
    if (inproc.matches != mp.matches) {
      counts_agree = false;
      std::cerr << "MATCH COUNT MISMATCH @ " << w
                << " workers: inproc=" << inproc.matches
                << " multiproc=" << mp.matches << "\n";
    }
    const double ratio = mp.rps / inproc.rps;
    if (w == 4) ratio_at_4 = ratio;
    t.add_row({static_cast<std::int64_t>(w), inproc.rps, mp.rps, ratio,
               static_cast<std::int64_t>(mp.matches),
               static_cast<std::int64_t>(mp.checkpoints)});
    if (!first) cells << ",\n";
    first = false;
    cells << "    {\"workers\": " << w
          << ", \"inproc_records_per_sec\": "
          << static_cast<std::uint64_t>(inproc.rps)
          << ", \"multiproc_records_per_sec\": "
          << static_cast<std::uint64_t>(mp.rps)
          << ", \"ratio\": " << ratio
          << ", \"inproc_wall_s\": " << inproc.wall_s
          << ", \"multiproc_wall_s\": " << mp.wall_s
          << ", \"matches\": " << mp.matches
          << ", \"checkpoints_completed\": " << mp.checkpoints << "}";
  }
  t.print(std::cout);
  std::cout << "\nacceptance: multiproc/inproc ratio @ 4 workers = "
            << ratio_at_4 << "x (target >= 0.5x), match counts "
            << (counts_agree ? "identical" : "MISMATCH") << "\n";

  std::ostringstream workload;
  workload << "records=" << total
           << " workers={1,2,4,8} keys=400 zipf=1.1 checkpoint_every=5000";
  std::ofstream json("BENCH_multiproc_throughput.json");
  json << "{\n  \"bench\": \"multiproc_throughput\",\n  "
       << json_meta(workload.str()) << ",\n"
       << "  \"records_per_run\": " << total << ",\n"
       << "  \"match_counts_identical\": "
       << (counts_agree ? "true" : "false") << ",\n"
       << "  \"ratio_4_workers\": " << ratio_at_4
       << ",\n  \"target_ratio\": 0.5,\n  \"cells\": [\n"
       << cells.str() << "\n  ]\n}\n";
  std::cout << "wrote BENCH_multiproc_throughput.json\n";
  // Correctness gates the exit code; the ratio is reported, not
  // enforced — a slower host must not turn an honest number red.
  return counts_agree ? 0 : 1;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) {
  // Worker re-entry: the router execs this same binary with
  // --multiproc-worker; hand those straight to the worker loop.
  const int rc = fastjoin::multiproc_worker_maybe_run(argc, argv);
  if (rc >= 0) return rc;
  return fastjoin::bench::run(argc, argv);
}
