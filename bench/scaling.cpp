// Scalability experiment (paper Section IV-C): elastic scale-out.
// Mid-run, fresh instances join each side of the biclique; the balancer
// populates them via key migrations (no rehash). Reports throughput and
// imbalance before/after, plus the SGR memory accounting.
//
// Usage: scaling [scale=1.0] [add=16]
#include <iostream>

#include "common/config.hpp"
#include "core/sgr.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  const auto add = static_cast<std::uint32_t>(cli.get_int("add", 16));
  PaperDefaults defaults;
  defaults.instances = 16;  // start small so scaling has headroom

  banner("Section IV-C", "elastic scale-out during a run");

  auto wl = didi_workload(defaults.dataset_gb, scale);
  const double feed_secs = static_cast<double>(wl.total_records) /
                           (wl.order_rate + wl.track_rate);
  const SimTime scale_at = from_seconds(feed_secs / 3.0);

  auto run_once = [&](bool do_scale) {
    RideHailingGenerator gen(wl);
    auto cfg = bench_engine_config(SystemKind::kFastJoin, defaults, 1);
    cfg.metrics.warmup = from_seconds(0.2 * feed_secs);
    SimJoinEngine engine(cfg);
    if (do_scale) engine.schedule_scale_out(scale_at, add);
    auto rep = engine.run(gen, bench_duration(wl));
    std::uint64_t moved_to_new = 0;
    if (do_scale) {
      for (int g = 0; g < 2; ++g) {
        for (InstanceId i = defaults.instances;
             i < defaults.instances + add; ++i) {
          moved_to_new +=
              engine.instance(static_cast<Side>(g), i).store().size();
        }
      }
    }
    return std::make_pair(rep, moved_to_new);
  };

  const auto [with, moved] = run_once(true);
  const auto [without, _] = run_once(false);

  Table t({"config", "throughput", "latency(ms)", "migrations",
           "tuples on new instances"});
  t.add_row({std::string("16 instances (no scaling)"),
             without.mean_throughput, without.mean_latency_ms,
             static_cast<std::int64_t>(without.migrations),
             std::int64_t{0}});
  t.add_row({"16 -> " + std::to_string(defaults.instances + add) +
                 " at t=" + std::to_string(to_seconds(scale_at)) + "s",
             with.mean_throughput, with.mean_latency_ms,
             static_cast<std::int64_t>(with.migrations),
             static_cast<std::int64_t>(moved)});
  t.print(std::cout);

  // SGR: how much of the new instances' memory stores tuples (Eq. 12).
  const double c = 14.0;  // paper's order-stream tuples/key
  std::cout << "\nSGR at the paper's c = 14: "
            << scaling_gain_ratio_c(c) << " (> 0.9 as claimed); tuples "
            << "migrated onto new instances: " << moved << "\n";
  std::cout << "(expected: scaled run has higher throughput and lower "
               "latency once the balancer populates the new "
               "instances)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
