// Section IV-C — Scaling Gain Ratio analysis (Eqs. 12-13): how much of
// newly added memory remains usable for tuples given FastJoin's per-key
// statistics overhead, as a function of c = tuples/key — plus an
// engine study of the memory-bounded alternative (SpaceSaving sketch
// statistics with a fixed key budget).
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/sgr.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  banner("Section IV-C", "Scaling Gain Ratio (SGR) sweep over c");

  SgrParams p;
  Table t({"c (tuples/key)", "SGR", "note"});
  for (double c : {1.0, 2.0, 5.0, 10.0, 14.0, 100.0, 1e4}) {
    std::string note;
    if (c == 14.0) note = "paper: passenger-order stream";
    if (c == 1e4) note = "paper: taxi-track stream (c > 10^4)";
    t.add_row({c, scaling_gain_ratio_c(c, p), note});
  }
  t.print(std::cout);
  std::cout << "(paper claim: c > 10 => SGR > 0.9, i.e. > 90% of new "
               "memory stores tuples)\n";

  // Extension: instead of paying chi_k per key, bound the per-instance
  // statistics to a fixed sketch capacity and measure what balancing
  // quality costs. The sketch keeps the hot keys, which is all
  // GreedyFit needs.
  std::cout << "\n-- memory-bounded statistics (SpaceSaving sketch) --\n";
  PaperDefaults defaults;
  Table s({"stats", "throughput", "latency(ms)", "mean LI",
           "migrations"});
  const struct {
    const char* label;
    std::size_t capacity;
  } modes[] = {
      {"exact (unbounded)", 0},
      {"sketch, 256 keys", 256},
      {"sketch, 64 keys", 64},
      {"sketch, 16 keys", 16},
  };
  for (const auto& mode : modes) {
    const auto rep = run_didi(
        SystemKind::kFastJoin, defaults, defaults.dataset_gb, scale, 1,
        [&](EngineConfig& cfg) { cfg.stats_capacity = mode.capacity; });
    s.add_row({std::string(mode.label), rep.mean_throughput,
               rep.mean_latency_ms, rep.mean_li,
               static_cast<std::int64_t>(rep.migrations)});
  }
  s.print(std::cout);
  std::cout << "(the sketch preserves most of the balancing benefit at a "
               "fixed memory budget, removing the chi_k * K term from "
               "Eq. 12 entirely)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
