// Figure 1 — the motivation experiment.
//
//  (a) CDF of key skew in the passenger-order stream
//  (b) CDF of key skew in the taxi-track stream
//  (c) per-instance workloads diverging over time under BiStream
//  (d) BiStream's real-time throughput degrading as imbalance grows
//
// Usage: fig01_motivation [scale=1.0] [instances=48]
#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "common/config.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

void skew_cdf(const char* name, const std::map<KeyId, std::uint64_t>& counts,
              std::uint64_t universe) {
  std::vector<std::uint64_t> v;
  std::uint64_t total = 0;
  for (const auto& [_, c] : counts) {
    v.push_back(c);
    total += c;
  }
  std::sort(v.rbegin(), v.rend());

  std::cout << "\n-- " << name << ": cumulative share of tuples held by "
            << "top fraction of locations --\n";
  Table t({"top % of keys", "% of tuples"});
  for (double frac : {0.05, 0.10, 0.20, 0.24, 0.40, 0.60, 0.80, 1.00}) {
    const auto top = static_cast<std::size_t>(frac * universe);
    std::uint64_t mass = 0;
    for (std::size_t i = 0; i < std::min(top, v.size()); ++i) mass += v[i];
    t.add_row({frac * 100.0, 100.0 * mass / static_cast<double>(total)});
  }
  t.print(std::cout);
}

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  PaperDefaults defaults;
  defaults.instances =
      static_cast<std::uint32_t>(cli.get_int("instances", 48));

  banner("Figure 1",
         "skewed key distributions and the resulting imbalance in "
         "BiStream (hash partitioning, no balancing)");

  // --- Fig. 1a / 1b: key-distribution CDFs --------------------------
  auto wl = didi_workload(defaults.dataset_gb, scale);
  RideHailingGenerator gen(wl);
  std::map<KeyId, std::uint64_t> orders, tracks;
  {
    RideHailingGenerator counter(wl);
    while (auto rec = counter.next()) {
      (rec->side == Side::kR ? orders : tracks)[rec->key]++;
    }
  }
  skew_cdf("Fig 1a: passenger orders", orders, wl.num_locations);
  skew_cdf("Fig 1b: taxi tracks", tracks, wl.num_locations);
  std::cout << "(paper: ~20% of locations hold 80% of orders; ~24% hold "
               "80% of tracks)\n";

  // --- Fig. 1c / 1d: BiStream imbalance + throughput over time ------
  auto cfg = bench_engine_config(SystemKind::kBiStream, defaults, 1);
  cfg.metrics.record_instance_loads = true;
  SimJoinEngine engine(cfg);
  const auto rep = engine.run(gen, bench_duration(wl));

  // Pick a handful of representative instances: the ones ending up
  // heaviest, median and lightest (tracks' storing side = S group).
  const auto& loads = rep.instance_load_s;
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    ranked.push_back({loads[i].last(), i});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::vector<std::string> names;
  std::vector<TimeSeries> picked;
  for (std::size_t idx : {std::size_t{0}, ranked.size() / 2,
                          ranked.size() - 1}) {
    names.push_back("instance " + std::to_string(ranked[idx].second));
    picked.push_back(loads[ranked[idx].second]);
  }
  print_series("Fig 1c: per-instance load over time (heaviest / median "
               "/ lightest)",
               names, picked, 0, kNanosPerSec, rep.feed_end);

  // Full-history joins emit more results/s as state accumulates, so the
  // absolute series rises for every system; the imbalance penalty shows
  // as BiStream falling behind a load-balanced run of the same trace.
  auto balanced_cfg =
      bench_engine_config(SystemKind::kFastJoin, defaults, 1);
  RideHailingGenerator gen2(wl);
  SimJoinEngine balanced(balanced_cfg);
  const auto balanced_rep = balanced.run(gen2, bench_duration(wl));
  print_series(
      "Fig 1d: throughput over time (results/s) — BiStream vs a "
      "balanced reference",
      {"BiStream", "balanced"},
      {rep.throughput_ts, balanced_rep.throughput_ts}, 0, kNanosPerSec,
      rep.feed_end);
  std::cout << "BiStream mean LI=" << rep.mean_li
            << ", throughput penalty vs balanced: "
            << improvement_pct(balanced_rep.mean_throughput,
                               rep.mean_throughput)
            << "% (paper: loads diverge and throughput sags as skew "
               "accumulates)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
