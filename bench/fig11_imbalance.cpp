// Figure 11 — real-time degree of load imbalance LI. The paper's
// headline dynamic: all three systems start around LI ~ 2.5; once
// FastJoin's monitor sees LI > Theta = 2.2 it migrates and LI drops
// below the threshold within about a second, while the baselines stay
// imbalanced.
//
// Usage: fig11_imbalance [scale=1.0] [instances=48] [theta=2.2] [gb=30]
#include <iostream>

#include "common/config.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  PaperDefaults defaults;
  defaults.instances =
      static_cast<std::uint32_t>(cli.get_int("instances", 48));
  defaults.theta = cli.get_double("theta", 2.2);
  defaults.dataset_gb = cli.get_double("gb", 30.0);

  banner("Figure 11",
         "real-time degree of load imbalance LI (Theta = " +
             std::to_string(defaults.theta) + ")");

  const std::vector<SystemKind> systems{SystemKind::kFastJoin,
                                        SystemKind::kBiStreamContRand,
                                        SystemKind::kBiStream};
  std::vector<std::string> names;
  std::vector<TimeSeries> li;
  std::vector<RunReport> reports;
  for (auto sys : systems) {
    names.emplace_back(system_name(sys));
    reports.push_back(
        run_didi(sys, defaults, defaults.dataset_gb, scale));
    // The S-side group stores the (huge) track stream: that is where
    // the interesting imbalance lives.
    li.push_back(reports.back().li_s_ts);
  }
  print_series("Fig 11: LI over time (S-storing group)", names, li, 0,
               kNanosPerSec / 2, reports[0].feed_end);

  const auto& fj = reports[0];
  std::cout << "\nFastJoin migrations: " << fj.migrations << "\n";
  Table t({"#", "triggered(s)", "completed(s)", "group", "src", "dst",
           "LI before", "keys", "tuples"});
  std::int64_t i = 0;
  for (const auto& ev : fj.migration_log) {
    t.add_row({++i, to_seconds(ev.triggered_at),
               to_seconds(ev.completed_at),
               std::string(side_name(ev.group)),
               static_cast<std::int64_t>(ev.src),
               static_cast<std::int64_t>(ev.dst), ev.li_before,
               static_cast<std::int64_t>(ev.keys_moved),
               static_cast<std::int64_t>(ev.tuples_moved)});
  }
  t.print(std::cout);
  std::cout << "(paper: LI drops 2.5 -> 1.9 within a second of crossing "
               "Theta and stays below it; each migration takes < 1 s)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
