// Extension — fault tolerance: instance crash + checkpoint recovery.
//
// The paper's related work (Photon, Ares) stresses that stream joins
// lose state on worker failure. This bench crashes one hot instance
// mid-run and sweeps the checkpoint interval: results lost shrink as
// checkpoints tighten, at the cost of periodic snapshot work.
//
// A second section exercises the LIVE runtime: a worker is crashed
// mid-feed and the supervisor's recovery time (crash -> respawned with
// the checkpointed store) is measured against the checkpoint interval.
//
// Usage: fault_tolerance [scale=1.0]
#include <chrono>
#include <iostream>
#include <thread>

#include "common/config.hpp"
#include "datagen/keygen.hpp"
#include "datagen/ride_hailing.hpp"
#include "runtime/live_engine.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  PaperDefaults defaults;
  defaults.instances = 16;

  banner("Extension", "checkpoint interval vs results lost to a crash");

  auto wl = didi_workload(defaults.dataset_gb, scale);
  const double feed_secs = static_cast<double>(wl.total_records) /
                           (wl.order_rate + wl.track_rate);
  const SimTime crash_at = from_seconds(feed_secs / 2.0);

  auto run_once = [&](SimTime checkpoint_period, bool crash) {
    RideHailingGenerator gen(wl);
    auto cfg = bench_engine_config(SystemKind::kFastJoin, defaults, 1);
    cfg.metrics.warmup = from_seconds(0.2 * feed_secs);
    cfg.checkpoint_period = checkpoint_period;
    cfg.drain = true;
    SimJoinEngine engine(cfg);
    // Crash the S-side instance that stores the most track tuples at
    // half-feed: instance 0 is as good as any under hash placement.
    if (crash) engine.schedule_failure(crash_at, Side::kS, 0);
    return engine.run(gen, bench_duration(wl));
  };

  const auto clean = run_once(0, false);

  Table t({"checkpoint interval", "results", "lost vs clean (%)",
           "tuples recovered"});
  t.add_row({std::string("(no crash)"),
             static_cast<std::int64_t>(clean.results), 0.0,
             std::int64_t{0}});
  const struct {
    const char* label;
    SimTime period;
  } sweeps[] = {
      {"no checkpoints", 0},
      {"every 2 s", 2 * kNanosPerSec},
      {"every 1 s", kNanosPerSec},
      {"every 0.5 s", kNanosPerSec / 2},
      {"every 0.25 s", kNanosPerSec / 4},
  };
  for (const auto& sw : sweeps) {
    const auto rep = run_once(sw.period, true);
    const double lost =
        100.0 *
        (static_cast<double>(clean.results) -
         static_cast<double>(rep.results)) /
        static_cast<double>(clean.results);
    t.add_row({std::string(sw.label),
               static_cast<std::int64_t>(rep.results), lost,
               static_cast<std::int64_t>(rep.tuples_recovered)});
  }
  t.print(std::cout);
  std::cout << "(tighter checkpoints recover more stored state, so "
               "fewer joins are lost; exactly-once still holds for the "
               "surviving state — crashes lose results, never duplicate "
               "them)\n";

  banner("Extension", "live runtime: supervised crash recovery");

  const int live_records =
      static_cast<int>(60'000 * std::max(scale, 0.05));
  auto live_once = [&](std::chrono::milliseconds checkpoint_period,
                       bool crash) {
    LiveConfig cfg;
    cfg.instances = 4;
    cfg.balancer = true;
    cfg.planner.theta = 1.2;
    cfg.min_heaviest_load = 100.0;
    cfg.monitor_period = std::chrono::milliseconds(2);
    cfg.checkpoint_period = checkpoint_period;
    LiveEngine engine(cfg);
    engine.start();

    KeyStreamSpec spec;
    spec.num_keys = 2'000;
    spec.zipf_s = 1.1;
    spec.seed = 42;
    KeyGenerator gen(spec);
    Xoshiro256 rng(7);
    std::uint64_t r_seq = 0, s_seq = 0;
    for (int i = 0; i < live_records; ++i) {
      Record rec;
      rec.side = rng.next_below(2) ? Side::kS : Side::kR;
      rec.key = gen();
      rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
      rec.ts = static_cast<std::uint64_t>(i);
      rec.payload = static_cast<std::uint64_t>(i);
      engine.push(rec);
      if (crash && i == live_records / 2) {
        // Let at least one snapshot land before the crash, so the
        // sweep isolates the checkpoint interval rather than the race
        // between feed start and the first checkpoint.
        if (checkpoint_period.count() > 0) {
          std::this_thread::sleep_for(2 * checkpoint_period);
        }
        engine.crash(Side::kS, 0);
      }
      if (i % 10'000 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    // Leave room for the supervisor to finish the respawn.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return engine.finish();
  };

  const auto live_clean = live_once(std::chrono::milliseconds(10), false);

  Table lt({"checkpoint interval", "results", "lost vs clean (%)",
            "restored", "dropped", "recovery (ms)"});
  lt.add_row({std::string("(no crash)"),
              static_cast<std::int64_t>(live_clean.results), 0.0,
              std::int64_t{0}, std::int64_t{0}, 0.0});
  const struct {
    const char* label;
    std::chrono::milliseconds period;
  } live_sweeps[] = {
      {"no checkpoints", std::chrono::milliseconds(0)},
      {"every 50 ms", std::chrono::milliseconds(50)},
      {"every 10 ms", std::chrono::milliseconds(10)},
      {"every 5 ms", std::chrono::milliseconds(5)},
  };
  for (const auto& sw : live_sweeps) {
    const auto st = live_once(sw.period, true);
    const double lost =
        100.0 *
        (static_cast<double>(live_clean.results) -
         static_cast<double>(st.results)) /
        static_cast<double>(live_clean.results);
    lt.add_row({std::string(sw.label),
                static_cast<std::int64_t>(st.results), lost,
                static_cast<std::int64_t>(st.tuples_restored),
                static_cast<std::int64_t>(st.records_dropped),
                st.mean_recovery_ms});
  }
  lt.print(std::cout);
  std::cout << "(recovery time is dominated by the supervisor's tick "
               "cadence plus the checkpoint reload; records pushed to "
               "the dead worker before its respawn are dropped and "
               "counted, never silently lost)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
