// Extension — fault tolerance: instance crash + checkpoint recovery.
//
// The paper's related work (Photon, Ares) stresses that stream joins
// lose state on worker failure. This bench crashes one hot instance
// mid-run and sweeps the checkpoint interval: results lost shrink as
// checkpoints tighten, at the cost of periodic snapshot work.
//
// Usage: fault_tolerance [scale=1.0]
#include <iostream>

#include "common/config.hpp"
#include "datagen/ride_hailing.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  PaperDefaults defaults;
  defaults.instances = 16;

  banner("Extension", "checkpoint interval vs results lost to a crash");

  auto wl = didi_workload(defaults.dataset_gb, scale);
  const double feed_secs = static_cast<double>(wl.total_records) /
                           (wl.order_rate + wl.track_rate);
  const SimTime crash_at = from_seconds(feed_secs / 2.0);

  auto run_once = [&](SimTime checkpoint_period, bool crash) {
    RideHailingGenerator gen(wl);
    auto cfg = bench_engine_config(SystemKind::kFastJoin, defaults, 1);
    cfg.metrics.warmup = from_seconds(0.2 * feed_secs);
    cfg.checkpoint_period = checkpoint_period;
    cfg.drain = true;
    SimJoinEngine engine(cfg);
    // Crash the S-side instance that stores the most track tuples at
    // half-feed: instance 0 is as good as any under hash placement.
    if (crash) engine.schedule_failure(crash_at, Side::kS, 0);
    return engine.run(gen, bench_duration(wl));
  };

  const auto clean = run_once(0, false);

  Table t({"checkpoint interval", "results", "lost vs clean (%)",
           "tuples recovered"});
  t.add_row({std::string("(no crash)"),
             static_cast<std::int64_t>(clean.results), 0.0,
             std::int64_t{0}});
  const struct {
    const char* label;
    SimTime period;
  } sweeps[] = {
      {"no checkpoints", 0},
      {"every 2 s", 2 * kNanosPerSec},
      {"every 1 s", kNanosPerSec},
      {"every 0.5 s", kNanosPerSec / 2},
      {"every 0.25 s", kNanosPerSec / 4},
  };
  for (const auto& sw : sweeps) {
    const auto rep = run_once(sw.period, true);
    const double lost =
        100.0 *
        (static_cast<double>(clean.results) -
         static_cast<double>(rep.results)) /
        static_cast<double>(clean.results);
    t.add_row({std::string(sw.label),
               static_cast<std::int64_t>(rep.results), lost,
               static_cast<std::int64_t>(rep.tuples_recovered)});
  }
  t.print(std::cout);
  std::cout << "(tighter checkpoints recover more stored state, so "
               "fewer joins are lost; exactly-once still holds for the "
               "surviving state — crashes lose results, never duplicate "
               "them)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
