// Perf — live data-plane scaling sweep: records/sec/core across
// producers × workers × skew, locked plane vs laned plane per cell.
//
// Where live_throughput defends the headline acceptance number at one
// operating point, this sweep is the CI perf-smoke surface: a grid of
// small cells whose laned/locked speedup ratios are compared against
// the committed BENCH_live_scaling.json by scripts/perf_smoke.py.
// Ratios, not absolute rec/s, are gated — shared CI runners disagree
// wildly on absolute throughput but agree on whether the lock-free
// plane still beats the locked one. Throughput is also reported per
// core (normalized by the CPUs visible to the process) so numbers from
// a 1-core container and an 8-core desktop land on one axis.
//
// Every cell runs the identical feed through both planes (best of
// `reps` repetitions per plane — the locked plane's wall clock is
// bimodal under balancer-migration timing, and capacity, not
// scheduling luck, is the thing being tracked) and the join results
// must match exactly across planes and reps; a mismatch fails the
// bench regardless of the numbers.
//
// Usage: live_scaling [scale=1.0] [records=60000] [reps=3]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iterator>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "datagen/keygen.hpp"
#include "runtime/live_engine.hpp"
#include "runtime/placement.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

/// Disjoint-keyspace per-producer traces (same construction as
/// live_throughput): the expected result set is independent of the
/// producer interleaving, so locked and laned runs must agree exactly.
std::vector<std::vector<Record>> make_traces(int n_producers,
                                             std::uint64_t total,
                                             int keys_per_producer,
                                             double zipf) {
  std::vector<std::vector<Record>> traces(n_producers);
  const std::uint64_t per = total / n_producers;
  for (int p = 0; p < n_producers; ++p) {
    KeyStreamSpec spec;
    spec.num_keys = keys_per_producer;
    spec.zipf_s = zipf;
    spec.seed = 2000 + static_cast<std::uint64_t>(p);
    KeyGenerator gen(spec);
    Xoshiro256 rng(spec.seed ^ 0xbeef);
    auto& out = traces[p];
    out.reserve(per);
    std::uint64_t r_seq = 0, s_seq = 0;
    for (std::uint64_t i = 0; i < per; ++i) {
      Record rec;
      rec.side = rng.next_below(2) ? Side::kS : Side::kR;
      rec.key = gen() * static_cast<KeyId>(n_producers) +
                static_cast<KeyId>(p);
      rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
      rec.ts = i * n_producers + static_cast<std::uint64_t>(p);
      rec.payload = rec.ts;
      out.push_back(rec);
    }
  }
  return traces;
}

struct RunResult {
  double rps = 0.0;
  double rps_per_core = 0.0;
  double wall_s = 0.0;
  std::uint64_t results = 0;
};

RunResult run_one_rep(DataPlane plane, std::uint32_t instances,
                      const std::vector<std::vector<Record>>& traces,
                      std::size_t cores) {
  std::uint64_t total = 0;
  for (const auto& t : traces) total += t.size();

  LiveConfig cfg;
  cfg.instances = instances;
  // Balancer off: migration timing doubles or halves a run's wall
  // clock at random, which is exactly the noise a ratio-gated CI
  // bench cannot afford. This sweep isolates data-plane plumbing
  // cost; live_throughput keeps the balancer on for the end-to-end
  // acceptance number.
  cfg.balancer = false;
  cfg.data_plane = plane;
  cfg.latency_sample_every = 64;  // keep the clock off the hot path
  LiveEngine engine(cfg);
  engine.start();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(traces.size());
  for (const auto& trace : traces) {
    producers.emplace_back([&engine, &trace, plane] {
      if (plane == DataPlane::kLegacyLocked) {
        for (const auto& rec : trace) engine.push(rec);
      } else {
        const int id = engine.register_producer();
        constexpr std::size_t kBatch = 256;
        for (std::size_t i = 0; i < trace.size(); i += kBatch) {
          const std::size_t n = std::min(kBatch, trace.size() - i);
          engine.push_batch(trace.data() + i, n, id);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  const auto stats = engine.finish();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  RunResult r;
  r.wall_s = wall;
  r.rps = static_cast<double>(total) / wall;
  r.rps_per_core = r.rps / static_cast<double>(cores);
  r.results = stats.results;
  return r;
}

/// Best-of-N wrapper: a cell's number is its best repetition. The
/// locked plane's single-run throughput is bimodal (balancer migration
/// timing can double a run's wall clock), which made single-shot
/// speedup ratios swing far beyond the CI gate's 0.9 tolerance;
/// keeping the fastest leg per plane measures each plane's capacity
/// rather than its worst scheduling luck. All reps must produce the
/// same join results — any disagreement poisons the whole bench.
RunResult run_once(DataPlane plane, std::uint32_t instances,
                   const std::vector<std::vector<Record>>& traces,
                   std::size_t cores, int reps, bool& results_agree) {
  RunResult best;
  for (int i = 0; i < reps; ++i) {
    RunResult r = run_one_rep(plane, instances, traces, cores);
    if (i > 0 && r.results != best.results) results_agree = false;
    if (i == 0 || r.rps > best.rps) best = r;
  }
  return best;
}

std::string json_run(const RunResult& r) {
  std::ostringstream os;
  os << "{\"records_per_sec\": " << static_cast<std::uint64_t>(r.rps)
     << ", \"records_per_sec_per_core\": "
     << static_cast<std::uint64_t>(r.rps_per_core)
     << ", \"wall_s\": " << r.wall_s << ", \"results\": " << r.results
     << "}";
  return os.str();
}

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  const auto total = static_cast<std::uint64_t>(
      cli.get_int("records", 60'000) * scale);
  const int reps =
      std::max(1, static_cast<int>(cli.get_int("reps", 3)));
  const std::size_t cores =
      std::max<std::size_t>(1, Topology::detect().cpus());

  banner("Perf", "live data-plane scaling: producers x workers x skew");
  std::cout << "records/run=" << total << "  reps=" << reps
            << " (best kept)  cores=" << cores
            << "  (override with records=N reps=K scale=X)\n\n";

  const int kProducers[] = {1, 2, 4};
  const std::uint32_t kWorkers[] = {2, 4, 8};
  const double kSkews[] = {0.8, 1.2};

  struct Cell {
    int producers;
    std::uint32_t workers;
    double zipf;
    RunResult locked, laned;
  };
  std::vector<Cell> grid;
  bool results_agree = true;

  for (const auto producers : kProducers) {
    for (const auto workers : kWorkers) {
      for (const auto zipf : kSkews) {
        const auto traces = make_traces(producers, total, 400, zipf);
        const auto locked = run_once(DataPlane::kLegacyLocked, workers,
                                     traces, cores, reps, results_agree);
        const auto laned = run_once(DataPlane::kLaned, workers, traces,
                                    cores, reps, results_agree);
        if (locked.results != laned.results) {
          results_agree = false;
          std::cerr << "RESULT MISMATCH at producers=" << producers
                    << " workers=" << workers << " zipf=" << zipf
                    << ": locked=" << locked.results
                    << " laned=" << laned.results << "\n";
        }
        grid.push_back({producers, workers, zipf, locked, laned});
      }
    }
  }

  // The gated speedup divides every laned cell by ONE locked
  // reference: the best locked run anywhere in the grid (the locked
  // plane's best configuration, in practice a 2-worker cell). A
  // per-cell locked denominator is useless for a ratio gate — a single
  // locked run on an oversubscribed box is bimodal, 2N+1 threads
  // convoying on one mutex land fast or slow on scheduler luck, and
  // even a per-worker-count max still swung ~30% run to run at 8
  // workers. The global max over reps x producers x workers x zipf
  // samples is pinned by the stable low-thread-count cells, so the
  // gated ratio inherits only the laned plane's (small) variance —
  // which is the plane the gate exists to watch. Per-cell raw locked
  // numbers stay in the JSON for forensics.
  double locked_ref = 0.0;
  for (const auto& c : grid) locked_ref = std::max(locked_ref, c.locked.rps);
  if (locked_ref <= 0.0) locked_ref = 1.0;

  Table t({"producers", "workers", "zipf", "locked rec/s/core",
           "laned rec/s/core", "speedup vs ref"});
  std::ostringstream cells;
  bool first = true;
  double worst_multi = 0.0;  // worst multi-producer speedup in the grid

  for (const auto& c : grid) {
    const double speedup = c.laned.rps / locked_ref;
    if (c.producers > 1) {
      worst_multi =
          worst_multi == 0.0 ? speedup : std::min(worst_multi, speedup);
    }
    t.add_row({static_cast<std::int64_t>(c.producers),
               static_cast<std::int64_t>(c.workers), c.zipf,
               c.locked.rps_per_core, c.laned.rps_per_core, speedup});
    if (!first) cells << ",\n";
    first = false;
    cells << "    {\"producers\": " << c.producers
          << ", \"workers\": " << c.workers << ", \"zipf\": " << c.zipf
          << ",\n     \"locked\": " << json_run(c.locked)
          << ",\n     \"laned\": " << json_run(c.laned)
          << ",\n     \"locked_ref_records_per_sec\": "
          << static_cast<std::uint64_t>(locked_ref)
          << ",\n     \"speedup\": " << speedup << "}";
  }
  t.print(std::cout);
  std::cout << "\nworst multi-producer speedup in grid = " << worst_multi
            << "x, results "
            << (results_agree ? "identical" : "MISMATCH") << "\n";

  std::ostringstream workload;
  workload << "records=" << total << " reps=" << reps
           << " producers={1,2,4} workers={2,4,8} zipf={0.8,1.2}";
  std::ofstream json("BENCH_live_scaling.json");
  json << "{\n  \"bench\": \"live_scaling\",\n  "
       << json_meta(workload.str()) << ",\n"
       << "  \"records_per_run\": " << total << ",\n"
       << "  \"cores\": " << cores << ",\n"
       << "  \"results_identical\": "
       << (results_agree ? "true" : "false") << ",\n"
       << "  \"worst_multi_producer_speedup\": " << worst_multi
       << ",\n  \"cells\": [\n"
       << cells.str() << "\n  ]\n}\n";
  std::cout << "wrote BENCH_live_scaling.json\n";
  // Exactness is the bench's own gate; the perf regression gate (cell
  // ratios vs the committed baseline) is scripts/perf_smoke.py.
  return results_agree ? 0 : 1;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) {
  return fastjoin::bench::run(argc, argv);
}
