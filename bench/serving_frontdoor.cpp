// Perf — serving front door: multi-tenant ingest→ack latency and
// admitted throughput over real client sockets.
//
// The front door turns the router from a library into a service:
// clients speak the framed client protocol (hello / append / ack)
// through admission control, the router stamps stream positions and
// fans out to forked workers. This bench measures what a tenant
// actually experiences at the socket:
//   * scaling cells: T polite tenants (T in {1, 2, 4}) append
//     concurrently under the default generous admission config —
//     per-request ingest→ack latency (p50/p99.9) and aggregate
//     admitted records/s;
//   * an abuse cell: one polite tenant next to one hammering tenant
//     under a tight per-tenant bucket — the abuser's refusals are
//     explicit kRejected frames, the polite tenant honors retry_after
//     and lands every batch, and nothing admitted is ever dropped.
// Every cell asserts the per-tenant ledger (offered == admitted +
// rejected, client-side and router-side) and zero drops; a latency
// number for a front door that lost records is not a number.
//
// Usage: serving_frontdoor [scale=1.0] [records=20000] [batch=256]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "net/connection.hpp"
#include "net/frame.hpp"
#include "runtime/multiproc.hpp"
#include "server/protocol.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

using namespace std::chrono_literals;

constexpr std::uint16_t wire(server::ClientMsgType t) {
  return static_cast<std::uint16_t>(t);
}

/// One client thread's session ledger and latency samples.
struct ClientRun {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t admitted_records = 0;
  std::vector<double> ack_us;  ///< per admitted request, ingest→ack
  double wall_s = 0.0;
  std::string fail;
  bool ok() const { return fail.empty(); }
};

double pct(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  const std::size_t idx = std::min(
      v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(
                                                     v.size() - 1)));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

ClientRun run_tenant(const net::Endpoint& ep, const std::string& tenant,
                     std::uint64_t seed, std::uint64_t records,
                     std::uint32_t batch, int num_keys, bool polite) {
  ClientRun out;
  std::string err;
  net::FrameConn fc = net::FrameConn::connect(ep, 10'000ms, &err);
  if (!fc.valid()) {
    out.fail = "connect: " + err;
    return out;
  }
  server::ClientHelloMsg h;
  h.tenant = tenant;
  net::Frame f;
  server::ClientHelloAckMsg hack;
  if (!fc.write_frame(wire(server::ClientMsgType::kClientHello),
                      encode(h)) ||
      !fc.read_frame(f) || !decode(f.payload, hack) || hack.ok != 1) {
    out.fail = "hello failed";
    return out;
  }
  Xoshiro256 rng(seed);
  std::uint64_t req_id = 1;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t sent = 0; sent < records && out.ok(); sent += batch) {
    server::AppendMsg m;
    m.records.resize(std::min<std::uint64_t>(batch, records - sent));
    for (auto& r : m.records) {
      r.side = rng.next_below(2) != 0 ? Side::kS : Side::kR;
      r.key = static_cast<KeyId>(rng.next_below(num_keys));
      r.payload = rng();
    }
    for (int attempt = 0; attempt < 1000; ++attempt) {
      m.req_id = req_id++;
      const auto a0 = std::chrono::steady_clock::now();
      if (!fc.write_frame(wire(server::ClientMsgType::kAppend),
                          encode(m))) {
        out.fail = "append write failed";
        break;
      }
      ++out.offered;
      if (!fc.read_frame(f)) {
        out.fail = "append reply missing";
        break;
      }
      if (f.type == wire(server::ClientMsgType::kAppendAck)) {
        server::AppendAckMsg ack;
        if (!decode(f.payload, ack)) {
          out.fail = "bad ack";
          break;
        }
        ++out.admitted;
        out.admitted_records += ack.appended + ack.parked;
        out.ack_us.push_back(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - a0)
                .count());
        break;
      }
      server::RejectedMsg rej;
      if (f.type != wire(server::ClientMsgType::kRejected) ||
          !decode(f.payload, rej)) {
        out.fail = "unexpected append reply";
        break;
      }
      ++out.rejected;
      if (!polite) break;  // hammer on: the refusal is final
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::max<std::uint32_t>(1, rej.retry_after_ms)));
    }
  }
  out.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  fc.write_frame(wire(server::ClientMsgType::kClientBye), {});
  return out;
}

MultiprocConfig serve_config(std::uint32_t workers) {
  MultiprocConfig cfg;
  cfg.workers = workers;
  cfg.worker_command = {"/proc/self/exe"};
  cfg.checkpoint_every = 5'000;
  cfg.serve = true;
  cfg.serve_cfg.endpoint.kind = net::Endpoint::Kind::kUnix;
  cfg.serve_cfg.endpoint.path =
      "/tmp/fastjoin-bench-serve-" + std::to_string(::getpid()) + ".sock";
  return cfg;
}

/// Tight per-tenant bucket used by the abuse cell.
struct AdmissionKnobs {
  std::uint64_t burst = 0;
  std::uint64_t rate = 0;
};

struct Cell {
  int tenants = 0;
  double admitted_rps = 0.0;
  double p50_us = 0.0;
  double p999_us = 0.0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  bool ledger_ok = true;
};

/// Drive `tenants` polite clients against a fresh router; returns the
/// aggregate cell. Exits on correctness violations.
Cell run_cell(int tenants, std::uint64_t records_per_tenant,
              std::uint32_t batch, const AdmissionKnobs* abuse) {
  auto cfg = serve_config(2);
  if (abuse != nullptr) {
    cfg.serve_cfg.admission.tenant_burst_bytes = abuse->burst;
    cfg.serve_cfg.admission.tenant_rate_bytes_per_sec = abuse->rate;
  }
  MultiprocRouter router(std::move(cfg));
  std::string err;
  if (!router.start(&err)) {
    std::cerr << "router start failed: " << err << "\n";
    std::exit(2);
  }
  const net::Endpoint ep = router.frontdoor()->endpoint();

  std::vector<ClientRun> runs(static_cast<std::size_t>(tenants));
  std::atomic<int> live{tenants};
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < tenants; ++t) {
    threads.emplace_back([&, t] {
      const bool abusive = abuse != nullptr && t == tenants - 1;
      runs[static_cast<std::size_t>(t)] = run_tenant(
          ep, (abusive ? "abusive-" : "tenant-") + std::to_string(t),
          0x5EED + static_cast<std::uint64_t>(t) * 977,
          records_per_tenant, batch, 400, !abusive);
      --live;
    });
  }
  while (live.load() > 0) router.pump(2ms);
  for (auto& th : threads) th.join();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  if (!router.finish()) {
    std::cerr << "router finish failed\n";
    std::exit(2);
  }
  if (router.stats().records_dropped != 0) {
    std::cerr << "front door dropped "
              << router.stats().records_dropped << " admitted records\n";
    std::exit(2);
  }

  Cell c;
  c.tenants = tenants;
  std::vector<double> all_us;
  std::uint64_t admitted_records = 0;
  for (const auto& r : runs) {
    if (!r.ok()) {
      std::cerr << "client failed: " << r.fail << "\n";
      std::exit(2);
    }
    if (r.offered != r.admitted + r.rejected) c.ledger_ok = false;
    c.admitted += r.admitted;
    c.rejected += r.rejected;
    admitted_records += r.admitted_records;
    all_us.insert(all_us.end(), r.ack_us.begin(), r.ack_us.end());
  }
  // Router-side ledger must agree with the sum of the client ledgers.
  const auto& tstats = router.frontdoor()->stats().tenants;
  std::uint64_t fd_admitted = 0, fd_rejected = 0;
  for (const auto& [name, ts] : tstats) {
    if (ts.offered_requests != ts.admitted_requests + ts.rejected_requests) {
      c.ledger_ok = false;
    }
    fd_admitted += ts.admitted_requests;
    fd_rejected += ts.rejected_requests;
  }
  if (fd_admitted != c.admitted || fd_rejected != c.rejected) {
    c.ledger_ok = false;
  }
  c.admitted_rps = static_cast<double>(admitted_records) / wall;
  c.p50_us = pct(all_us, 0.50);
  c.p999_us = pct(all_us, 0.999);
  return c;
}

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  const auto records = static_cast<std::uint64_t>(
      cli.get_int("records", 20'000) * scale);
  const auto batch =
      static_cast<std::uint32_t>(cli.get_int("batch", 256));

  banner("Perf",
         "serving front door: multi-tenant ingest→ack over real sockets");
  std::cout << "records/tenant=" << records << " batch=" << batch
            << "  (override with records=N batch=B scale=X)\n\n";

  Table t({"tenants", "admitted rec/s", "ack p50 us", "ack p99.9 us",
           "admitted", "rejected", "ledger"});
  std::ostringstream cells;
  bool all_ok = true;
  bool first = true;
  for (const int tenants : {1, 2, 4}) {
    const Cell c = run_cell(tenants, records, batch, nullptr);
    all_ok = all_ok && c.ledger_ok && c.rejected == 0;
    t.add_row({static_cast<std::int64_t>(c.tenants), c.admitted_rps,
               c.p50_us, c.p999_us, static_cast<std::int64_t>(c.admitted),
               static_cast<std::int64_t>(c.rejected),
               std::string(c.ledger_ok ? "exact" : "BROKEN")});
    if (!first) cells << ",\n";
    first = false;
    cells << "    {\"tenants\": " << c.tenants
          << ", \"admitted_records_per_sec\": "
          << static_cast<std::uint64_t>(c.admitted_rps)
          << ", \"ack_p50_us\": " << c.p50_us
          << ", \"ack_p999_us\": " << c.p999_us
          << ", \"admitted_requests\": " << c.admitted
          << ", \"rejected_requests\": " << c.rejected
          << ", \"ledger_exact\": " << (c.ledger_ok ? "true" : "false")
          << "}";
  }

  // Abuse cell: a tight bucket (one batch per burst, ~8 batches/s of
  // refill), one polite tenant + one hammering tenant.
  AdmissionKnobs tight;
  tight.burst = server::append_payload_bytes(batch);
  tight.rate = 8 * server::append_payload_bytes(batch);
  const Cell abuse = run_cell(2, records / 4, batch, &tight);
  const bool abuse_ok = abuse.ledger_ok && abuse.rejected > 0;
  all_ok = all_ok && abuse_ok;
  t.add_row({static_cast<std::int64_t>(-2), abuse.admitted_rps,
             abuse.p50_us, abuse.p999_us,
             static_cast<std::int64_t>(abuse.admitted),
             static_cast<std::int64_t>(abuse.rejected),
             std::string(abuse.ledger_ok ? "exact" : "BROKEN")});
  t.print(std::cout);
  std::cout << "(tenants=-2 row: abuse cell — 1 polite + 1 hammering "
               "tenant under a tight bucket)\n";
  std::cout << "\nacceptance: ledgers exact, zero drops, abuse rejects "
            << abuse.rejected << " (must be > 0): "
            << (all_ok ? "ok" : "FAIL") << "\n";

  std::ostringstream workload;
  workload << "records_per_tenant=" << records << " batch=" << batch
           << " tenants={1,2,4}+abuse workers=2 keys=400"
           << " checkpoint_every=5000";
  std::ofstream json("BENCH_serving_frontdoor.json");
  json << "{\n  \"bench\": \"serving_frontdoor\",\n  "
       << json_meta(workload.str()) << ",\n"
       << "  \"records_per_tenant\": " << records << ",\n"
       << "  \"batch\": " << batch << ",\n"
       << "  \"cells\": [\n"
       << cells.str() << "\n  ],\n"
       << "  \"abuse\": {\"admitted_requests\": " << abuse.admitted
       << ", \"rejected_requests\": " << abuse.rejected
       << ", \"polite_ack_p50_us\": " << abuse.p50_us
       << ", \"ledger_exact\": " << (abuse.ledger_ok ? "true" : "false")
       << "}\n}\n";
  std::cout << "wrote BENCH_serving_frontdoor.json\n";
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) {
  // Worker re-entry: the router execs this same binary with
  // --multiproc-worker; hand those straight to the worker loop.
  const int rc = fastjoin::multiproc_worker_maybe_run(argc, argv);
  if (rc >= 0) return rc;
  return fastjoin::bench::run(argc, argv);
}
