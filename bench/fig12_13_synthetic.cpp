// Figures 12 & 13 — synthetic Gxy datasets: throughput and latency for
// every combination of zipf exponents x, y in {0, 1, 2} on the two
// streams ("G02" = uniform R, zipf-2.0 S, etc.).
//
// Usage: fig12_13_synthetic [scale=1.0] [instances=48] [theta=2.2]
#include <iostream>

#include "common/config.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  PaperDefaults defaults;
  defaults.instances =
      static_cast<std::uint32_t>(cli.get_int("instances", 48));
  defaults.theta = cli.get_double("theta", 2.2);

  banner("Figures 12 & 13",
         "throughput and latency on synthetic Gxy zipf datasets");

  const std::vector<SystemKind> systems{SystemKind::kFastJoin,
                                        SystemKind::kBiStreamContRand,
                                        SystemKind::kBiStream};
  Table tput({"group", "FastJoin", "BiStream-ContRand", "BiStream"});
  Table lat({"group", "FastJoin", "BiStream-ContRand", "BiStream"});

  const double exps[] = {0.0, 1.0, 2.0};
  for (double zr : exps) {
    for (double zs : exps) {
      const std::string group = "G" + std::to_string(int(zr)) +
                                std::to_string(int(zs));
      std::vector<Cell> trow{group};
      std::vector<Cell> lrow{group};
      for (auto sys : systems) {
        const auto rep = run_synthetic(sys, zr, zs, scale, defaults);
        trow.emplace_back(rep.mean_throughput);
        lrow.emplace_back(rep.mean_latency_ms);
      }
      tput.add_row(std::move(trow));
      lat.add_row(std::move(lrow));
    }
  }

  std::cout << "\n-- Fig 12: average throughput (results/s) --\n";
  tput.print(std::cout);
  std::cout << "\n-- Fig 13: average latency (ms) --\n";
  lat.print(std::cout);
  std::cout << "(paper: FastJoin wins even at G00 and wins big whenever "
               "at least one stream is skewed)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
