// Perf + correctness — StreamLog ingest: the cost of durability, and
// what the replay path buys back after a crash.
//
// Two questions, one binary:
//  1. Steady state: publishing every record through the partitioned
//     ingest log (memory- and file-backed) must not give back what the
//     lock-free data plane won — acceptance is >= 80% of the log-off
//     laned throughput at the multi-producer point.
//  2. Recovery: with checkpoints + crash injection, offset replay must
//     deliver the SAME join result as an uncrashed run of the same
//     feed, with records_dropped == 0 and zero duplicate-free loss —
//     the bench reports how much throughput the crashed run retains.
//
// Writes BENCH_ingest_recovery.json (provenance-stamped).
//
// Usage: ingest_recovery [scale=1.0] [records=120000]
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "datagen/keygen.hpp"
#include "runtime/live_engine.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

/// Disjoint-keyspace per-producer traces (same construction as
/// live_throughput): the expected result set is independent of the
/// producer interleaving, so every mode must agree exactly.
std::vector<std::vector<Record>> make_traces(int n_producers,
                                             std::uint64_t total,
                                             int keys_per_producer,
                                             double zipf) {
  std::vector<std::vector<Record>> traces(n_producers);
  const std::uint64_t per = total / n_producers;
  for (int p = 0; p < n_producers; ++p) {
    KeyStreamSpec spec;
    spec.num_keys = keys_per_producer;
    spec.zipf_s = zipf;
    spec.seed = 4000 + static_cast<std::uint64_t>(p);
    KeyGenerator gen(spec);
    Xoshiro256 rng(spec.seed ^ 0xbeef);
    auto& out = traces[p];
    out.reserve(per);
    std::uint64_t r_seq = 0, s_seq = 0;
    for (std::uint64_t i = 0; i < per; ++i) {
      Record rec;
      rec.side = rng.next_below(2) ? Side::kS : Side::kR;
      rec.key = gen() * static_cast<KeyId>(n_producers) +
                static_cast<KeyId>(p);
      rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
      rec.ts = i * n_producers + static_cast<std::uint64_t>(p);
      rec.payload = rec.ts;
      out.push_back(rec);
    }
  }
  return traces;
}

enum class LogMode { kOff, kMemory, kFile };

const char* mode_name(LogMode m) {
  switch (m) {
    case LogMode::kOff: return "off";
    case LogMode::kMemory: return "memory";
    case LogMode::kFile: return "file";
  }
  return "?";
}

struct RunResult {
  double rps = 0.0;
  double wall_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::uint64_t results = 0;
  std::uint64_t dropped = 0;
  std::uint64_t buffered_lost = 0;
  std::size_t crashes = 0;
  std::size_t recoveries = 0;
  std::uint64_t replayed = 0;
  std::uint64_t truncated = 0;
  double mean_recovery_ms = 0.0;
};

/// One laned-plane run over `traces`. `crash_every` > 0 injects a
/// worker crash (alternating sides, round-robin instance) after every
/// that many pushed records on producer 0.
RunResult run_once(LogMode mode, std::uint32_t instances,
                   const std::vector<std::vector<Record>>& traces,
                   std::uint64_t crash_every, const std::string& dir) {
  LiveConfig cfg;
  cfg.instances = instances;
  cfg.balancer = false;  // exact cross-mode comparison: no migrations
  cfg.data_plane = DataPlane::kLaned;
  if (crash_every > 0) {
    cfg.monitor_period = std::chrono::milliseconds(2);
    cfg.checkpoint_period = std::chrono::milliseconds(10);
  }
  if (mode != LogMode::kOff) {
    cfg.ingest.enabled = true;
    if (mode == LogMode::kFile) {
      cfg.ingest.backend = SegmentBackend::kFile;
      cfg.ingest.dir = dir;
    }
  }
  LiveEngine engine(cfg);
  engine.start();

  std::uint64_t total = 0;
  for (const auto& t : traces) total += t.size();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(traces.size());
  for (std::size_t pi = 0; pi < traces.size(); ++pi) {
    const auto& trace = traces[pi];
    const bool chaos_producer = crash_every > 0 && pi == 0;
    producers.emplace_back([&engine, &trace, chaos_producer,
                            crash_every, instances] {
      const int id = engine.register_producer();
      constexpr std::size_t kBatch = 256;
      std::uint64_t since_crash = 0, crash_no = 0;
      for (std::size_t i = 0; i < trace.size(); i += kBatch) {
        const std::size_t n = std::min(kBatch, trace.size() - i);
        engine.push_batch(trace.data() + i, n, id);
        if (chaos_producer) {
          since_crash += n;
          if (since_crash >= crash_every) {
            since_crash = 0;
            const Side side =
                (crash_no % 2 == 0) ? Side::kR : Side::kS;
            engine.crash(side, static_cast<InstanceId>(
                                   (crash_no / 2) % instances));
            ++crash_no;
            // Let checkpoints and the respawn land before feeding on
            // (recovery itself is single-digit ms; this injected stall
            // dominates the crashed run's throughput delta).
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
          }
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  const auto stats = engine.finish();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  RunResult r;
  r.wall_s = wall;
  r.rps = static_cast<double>(total) / wall;
  r.p50_us = stats.p50_latency_us;
  r.p99_us = stats.p99_latency_us;
  r.p999_us = stats.p999_latency_us;
  r.results = stats.results;
  r.dropped = stats.records_dropped;
  r.buffered_lost = stats.buffered_lost;
  r.crashes = stats.crashes;
  r.recoveries = stats.recoveries;
  r.replayed = stats.records_replayed;
  r.truncated = stats.log_truncated;
  r.mean_recovery_ms = stats.mean_recovery_ms;
  return r;
}

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  const auto total = static_cast<std::uint64_t>(
      cli.get_int("records", 120'000) * scale);

  banner("Perf", "StreamLog ingest: durability cost + crash replay");
  std::cout << "records/run=" << total
            << "  (override with records=N scale=X)\n\n";

  // A wide keyspace keeps the match count O(records): the bench must
  // measure the ingest path, not the result-emission path (a narrow
  // keyspace yields 100x+ amplification and the log cost vanishes in
  // the join's noise).
  const std::uint32_t kInstances = 8;
  const int kProducers = 4;
  const int kKeys = 20'000;
  const double kSkews[] = {0.8, 1.2};

  const std::string file_dir =
      (std::filesystem::temp_directory_path() /
       ("fastjoin_ingest_bench_" + std::to_string(::getpid())))
          .string();

  // --- Part 1: steady-state durability cost. -------------------------
  Table t({"zipf", "log", "rec/s", "vs off", "results"});
  std::ostringstream steady_cells;
  double accept_ratio = 0.0;  // worst StreamLog-on ratio across cells
  bool steady_agree = true;
  bool first = true;
  constexpr LogMode kModes[] = {LogMode::kOff, LogMode::kMemory,
                                LogMode::kFile};
  for (const double zipf : kSkews) {
    const auto traces = make_traces(kProducers, total, kKeys, zipf);
    // Paired rounds: machine throughput on a shared container drifts
    // 2x+ between epochs, so comparing a best-of-N "off" against a
    // best-of-N "memory" measured in a *different* epoch gates on
    // scheduler weather, not the log. Each round runs all three modes
    // back-to-back and yields one ratio; the gate takes the median
    // ratio across rounds (common-mode drift cancels within a round,
    // the median rejects the odd spike).
    constexpr int kRounds = 5;
    double rps[3][kRounds];
    std::uint64_t results[3] = {0, 0, 0};
    for (int round = 0; round < kRounds; ++round) {
      for (int m = 0; m < 3; ++m) {
        const auto one = run_once(kModes[m], kInstances, traces,
                                  /*crash_every=*/0, file_dir);
        rps[m][round] = one.rps;
        if (round == 0) {
          results[m] = one.results;
        } else if (one.results != results[m]) {
          steady_agree = false;  // non-deterministic within a mode
        }
      }
      for (int m = 1; m < 3; ++m) {
        if (results[m] != results[0]) {
          steady_agree = false;
          std::cerr << "RESULT MISMATCH: off=" << results[0] << " "
                    << mode_name(kModes[m]) << "=" << results[m]
                    << "\n";
        }
      }
    }
    const auto median = [](double* v, int n) {
      std::sort(v, v + n);
      return v[n / 2];
    };
    double off_rps[kRounds];  // median() sorts in place; keep the
    std::copy(rps[0], rps[0] + kRounds, off_rps);  // pairing intact
    for (int m = 0; m < 3; ++m) {
      double ratios[kRounds];
      for (int round = 0; round < kRounds; ++round) {
        ratios[round] = rps[m][round] / off_rps[round];
      }
      const double med_ratio = median(ratios, kRounds);
      const double med_rps = median(rps[m], kRounds);
      // Acceptance tracks the memory backend (the engine default);
      // the file backend pays fwrite-per-record for durability and
      // is reported, not gated.
      if (kModes[m] == LogMode::kMemory) {
        accept_ratio = accept_ratio == 0.0
                           ? med_ratio
                           : std::min(accept_ratio, med_ratio);
      }
      t.add_row({zipf, mode_name(kModes[m]), med_rps, med_ratio,
                 static_cast<std::int64_t>(results[m])});
      if (!first) steady_cells << ",\n";
      first = false;
      steady_cells << "    {\"zipf\": " << zipf << ", \"log\": \""
                   << mode_name(kModes[m])
                   << "\", \"records_per_sec\": "
                   << static_cast<std::uint64_t>(med_rps)
                   << ", \"ratio_vs_off\": " << med_ratio
                   << ", \"results\": " << results[m] << "}";
    }
  }
  t.print(std::cout);
  std::cout << "\nsteady-state acceptance: worst memory-log ratio = "
            << accept_ratio << "x (target >= 0.8), results "
            << (steady_agree ? "identical" : "MISMATCH") << "\n";

  // --- Part 2: crash + offset replay. --------------------------------
  const auto traces = make_traces(kProducers, total, kKeys, 1.0);
  const auto clean = run_once(LogMode::kMemory, kInstances, traces,
                              /*crash_every=*/0, file_dir);
  const auto crashed = run_once(LogMode::kMemory, kInstances, traces,
                                /*crash_every=*/total / 24, file_dir);
  const bool replay_exact = crashed.results == clean.results &&
                            crashed.dropped == 0 &&
                            crashed.buffered_lost == 0;
  const double crash_ratio = crashed.rps / clean.rps;
  std::cout << "\nreplay: crashes=" << crashed.crashes
            << " recoveries=" << crashed.recoveries
            << " records_replayed=" << crashed.replayed
            << " log_truncated=" << crashed.truncated
            << "\n        dropped=" << crashed.dropped
            << " buffered_lost=" << crashed.buffered_lost
            << " results=" << crashed.results << " (clean run "
            << clean.results << ") -> "
            << (replay_exact ? "EXACT" : "LOSS") << "\n"
            << "        throughput with crashes = " << crash_ratio
            << "x of clean, mean recovery "
            << crashed.mean_recovery_ms << " ms\n";

  std::filesystem::remove_all(file_dir);

  std::ostringstream workload;
  workload << "records=" << total << " instances=" << kInstances
           << " producers=" << kProducers << " zipf={0.8,1.2}"
           << " crash_every=" << total / 24;
  std::ofstream json("BENCH_ingest_recovery.json");
  json << "{\n  \"bench\": \"ingest_recovery\",\n  "
       << json_meta(workload.str()) << ",\n"
       << "  \"records_per_run\": " << total << ",\n"
       << "  \"steady_state_results_identical\": "
       << (steady_agree ? "true" : "false") << ",\n"
       << "  \"worst_memory_log_ratio\": " << accept_ratio
       << ",\n  \"target_ratio\": 0.8,\n"
       << "  \"steady_state\": [\n" << steady_cells.str()
       << "\n  ],\n  \"replay\": {\n"
       << "    \"crashes\": " << crashed.crashes
       << ", \"recoveries\": " << crashed.recoveries
       << ",\n    \"records_replayed\": " << crashed.replayed
       << ", \"log_truncated\": " << crashed.truncated
       << ",\n    \"records_dropped\": " << crashed.dropped
       << ", \"buffered_lost\": " << crashed.buffered_lost
       << ",\n    \"results\": " << crashed.results
       << ", \"clean_results\": " << clean.results
       << ", \"exact\": " << (replay_exact ? "true" : "false")
       << ",\n    \"throughput_ratio_vs_clean\": " << crash_ratio
       << ", \"mean_recovery_ms\": " << crashed.mean_recovery_ms
       << ",\n    \"clean_latency_us\": {\"p50\": " << clean.p50_us
       << ", \"p99\": " << clean.p99_us << ", \"p999\": "
       << clean.p999_us << "}"
       << ",\n    \"crashed_latency_us\": {\"p50\": " << crashed.p50_us
       << ", \"p99\": " << crashed.p99_us << ", \"p999\": "
       << crashed.p999_us << "}\n  }\n}\n";
  std::cout << "wrote BENCH_ingest_recovery.json\n";

  const bool ratio_ok = accept_ratio >= 0.8 || scale < 1.0;
  return steady_agree && replay_exact && ratio_ok ? 0 : 1;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) {
  return fastjoin::bench::run(argc, argv);
}
