// Related-work comparison (paper Section II): the join-biclique systems
// (BiStream / FastJoin) vs the join-matrix model (SQUALL) and
// partial-key grouping, on the same skewed synthetic workload.
//
// Reproduces the qualitative claims:
//  * join-matrix balances regardless of skew but replicates every tuple
//    (memory-inefficient, BiStream's critique);
//  * partial-key grouping splits each key over two instances (good for
//    store balance, pays double probes);
//  * FastJoin balances without replication.
//
// Usage: related_work_baselines [scale=1.0]
#include <cmath>
#include <iostream>

#include "common/config.hpp"
#include "datagen/ride_hailing.hpp"
#include "engine/matrix_engine.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  PaperDefaults defaults;
  defaults.instances = 48;

  banner("Related work",
         "join-biclique (BiStream/FastJoin) vs join-matrix (SQUALL) vs "
         "partial-key grouping");

  const auto wl = didi_workload(defaults.dataset_gb, scale);
  const double feed_secs = static_cast<double>(wl.total_records) /
                           (wl.order_rate + wl.track_rate);
  const SimTime duration = bench_duration(wl);

  Table t({"system", "throughput", "latency(ms)", "stored tuples",
           "replication", "migrations"});

  auto run_biclique = [&](SystemKind sys, PartitionStrategy strategy,
                          const char* label) {
    auto cfg = bench_engine_config(sys, defaults, 1);
    cfg.metrics.warmup = from_seconds(0.2 * feed_secs);
    if (strategy != PartitionStrategy::kHash) {
      cfg.strategy = strategy;
      cfg.balancer.enabled = false;
    }
    RideHailingGenerator gen(wl);
    SimJoinEngine engine(cfg);
    const auto rep = engine.run(gen, duration);
    std::uint64_t stored = 0;
    for (int g = 0; g < 2; ++g) {
      for (InstanceId i = 0; i < cfg.instances; ++i) {
        stored +=
            engine.instance(static_cast<Side>(g), i).store().size();
      }
    }
    t.add_row({std::string(label), rep.mean_throughput,
               rep.mean_latency_ms, static_cast<std::int64_t>(stored),
               static_cast<double>(stored) /
                   static_cast<double>(rep.records_in),
               static_cast<std::int64_t>(rep.migrations)});
  };

  run_biclique(SystemKind::kBiStream, PartitionStrategy::kHash,
               "BiStream (hash)");
  run_biclique(SystemKind::kFastJoin, PartitionStrategy::kHash,
               "FastJoin");
  run_biclique(SystemKind::kBiStream, PartitionStrategy::kPartialKey,
               "partial-key grouping");
  run_biclique(SystemKind::kBiStream, PartitionStrategy::kRandomBroadcast,
               "random + broadcast");

  {
    // Join-matrix with a comparable number of processing cells
    // (16 per biclique side = 32 total -> ~6x5 grid = 30 cells).
    MatrixConfig mcfg;
    const auto side = static_cast<std::uint32_t>(
        std::lround(std::sqrt(2.0 * defaults.instances)));
    mcfg.rows = side;
    mcfg.cols = side;
    auto ref = bench_engine_config(SystemKind::kBiStream, defaults, 1);
    mcfg.cost = ref.cost;
    mcfg.warmup = from_seconds(0.2 * feed_secs);
    RideHailingGenerator gen(wl);
    MatrixJoinEngine engine(mcfg);
    const auto rep = engine.run(gen, duration);
    t.add_row({std::string("join-matrix (SQUALL)"), rep.mean_throughput,
               rep.mean_latency_ms,
               static_cast<std::int64_t>(rep.tuples_stored),
               rep.replication_factor, std::int64_t{0}});
  }

  t.print(std::cout);
  std::cout << "(join-matrix stores each tuple rows/cols times — the "
               "memory cost BiStream Section II criticizes — while the "
               "biclique systems store each tuple once)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
