// Ablation — key-selection algorithm inside the full system:
// GreedyFit (paper Alg. 1) vs SAFit (Alg. 3) vs RandomFit (the strawman
// Section III-B argues against). End-to-end metrics on the ride-hailing
// workload.
//
// Usage: ablation_key_selection [scale=1.0]
#include <iostream>

#include "common/config.hpp"
#include "support/harness.hpp"
#include "support/workloads.hpp"

namespace fastjoin::bench {
namespace {

int run(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const double scale = cli_scale(cli);
  PaperDefaults defaults;

  banner("Ablation", "key-selection algorithm in the full system");

  Table t({"selector", "throughput", "latency(ms)", "mean LI",
           "migrations", "tuples moved"});
  const struct {
    const char* name;
    KeySelectorKind kind;
    bool naive;
  } selectors[] = {
      {"GreedyFit", KeySelectorKind::kGreedyFit, false},
      {"SAFit", KeySelectorKind::kSAFit, false},
      {"RandomFit (feasible)", KeySelectorKind::kRandomFit, false},
      {"RandomFit (naive)", KeySelectorKind::kRandomFit, true},
  };
  for (const auto& sel : selectors) {
    const auto rep = run_didi(
        SystemKind::kFastJoin, defaults, defaults.dataset_gb, scale, 1,
        [&](EngineConfig& cfg) {
          cfg.balancer.planner.selector = sel.kind;
          cfg.balancer.planner.random.naive = sel.naive;
          cfg.balancer.planner.random.max_fraction =
              sel.naive ? 0.3 : 0.5;
        });
    t.add_row({std::string(sel.name), rep.mean_throughput,
               rep.mean_latency_ms, rep.mean_li,
               static_cast<std::int64_t>(rep.migrations),
               static_cast<std::int64_t>(rep.tuples_migrated)});
  }

  // Baseline without any balancing for reference.
  const auto none = run_didi(SystemKind::kBiStream, defaults,
                             defaults.dataset_gb, scale);
  t.add_row({std::string("(none / BiStream)"), none.mean_throughput,
             none.mean_latency_ms, none.mean_li, std::int64_t{0},
             std::int64_t{0}});
  t.print(std::cout);
  std::cout << "(naive random ignores the benefit model entirely and can "
               "make the target heavier — Section III-B's motivation for "
               "modeling migration benefit; the feasible variants differ "
               "mainly in tuples moved per unit of benefit)\n";
  return 0;
}

}  // namespace
}  // namespace fastjoin::bench

int main(int argc, char** argv) { return fastjoin::bench::run(argc, argv); }
