#include "support/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

// Injected by bench/CMakeLists.txt; fall back gracefully when the
// bench sources are compiled outside that scope.
#ifndef FASTJOIN_GIT_SHA
#define FASTJOIN_GIT_SHA "unknown"
#endif
#ifndef FASTJOIN_BUILD_TYPE
#define FASTJOIN_BUILD_TYPE "unspecified"
#endif

namespace fastjoin::bench {

void banner(const std::string& figure, const std::string& description) {
  std::cout << "\n=== " << figure << " — " << description << " ===\n";
}

void print_series(const std::string& title,
                  const std::vector<std::string>& names,
                  const std::vector<TimeSeries>& series, SimTime start,
                  SimTime step, SimTime end) {
  std::cout << "\n-- " << title << " --\n";
  std::vector<std::string> headers{"t(s)"};
  headers.insert(headers.end(), names.begin(), names.end());
  Table table(headers);

  std::vector<std::vector<TimePoint>> resampled;
  std::size_t rows = 0;
  for (const auto& s : series) {
    resampled.push_back(s.resample(start, step));
    rows = std::max(rows, resampled.back().size());
  }
  for (std::size_t i = 0; i < rows; ++i) {
    const SimTime t = start + static_cast<SimTime>(i) * step;
    if (end > 0 && t > end) break;
    std::vector<Cell> row;
    row.emplace_back(to_seconds(t));
    for (const auto& r : resampled) {
      row.emplace_back(i < r.size() ? r[i].v
                                    : (r.empty() ? 0.0 : r.back().v));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

void print_summary(const std::vector<std::string>& names,
                   const std::vector<RunReport>& reports) {
  Table table({"system", "throughput(res/s)", "latency(ms)", "p99(ms)",
               "mean LI", "migrations", "tuples moved", "results"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    table.add_row({names[i], r.mean_throughput, r.mean_latency_ms,
                   r.p99_latency_ms, r.mean_li,
                   static_cast<std::int64_t>(r.migrations),
                   static_cast<std::int64_t>(r.tuples_migrated),
                   static_cast<std::int64_t>(r.results)});
  }
  table.print(std::cout);
}

double improvement_pct(double a, double b) {
  return b != 0.0 ? (a - b) / b * 100.0 : 0.0;
}

namespace {

/// stdout of `cmd`, trailing whitespace trimmed; empty on any failure
/// (no git, not a repo, ...). Provenance degrades gracefully to the
/// compiled-in stamp in that case — it only *fails* when git answers
/// and the answer contradicts the stamp.
std::string capture(const char* cmd) {
#if defined(_WIN32)
  (void)cmd;
  return {};
#else
  FILE* pipe = ::popen(cmd, "r");
  if (pipe == nullptr) return {};
  std::string out;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  if (::pclose(pipe) != 0) return {};
  while (!out.empty() &&
         (out.back() == '\n' || out.back() == '\r' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
#endif
}

/// `git status --porcelain` paths that are NOT bench result files.
/// BENCH_*.json are exempt because regenerating them is exactly what a
/// bench run does — a tree that is dirty only with fresh results is
/// still attributable to HEAD.
std::vector<std::string> dirty_paths() {
  const std::string status = capture("git status --porcelain 2>/dev/null");
  std::vector<std::string> out;
  std::istringstream lines(status);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.size() < 4) continue;
    std::string path = line.substr(3);
    const auto arrow = path.find(" -> ");  // renames: judge the target
    if (arrow != std::string::npos) path = path.substr(arrow + 4);
    const auto slash = path.rfind('/');
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const bool bench_json =
        base.rfind("BENCH_", 0) == 0 && base.size() > 5 &&
        base.compare(base.size() - 5, 5, ".json") == 0;
    if (!bench_json) out.push_back(path);
  }
  return out;
}

}  // namespace

std::string json_meta(const std::string& workload) {
  std::string sha = FASTJOIN_GIT_SHA;
  const bool allow_dirty = std::getenv("FASTJOIN_ALLOW_DIRTY") != nullptr;
  const std::string head = capture("git rev-parse --short HEAD 2>/dev/null");
  if (!head.empty()) {
    const auto dirty = dirty_paths();
    if (!dirty.empty() || head != sha) {
      if (!allow_dirty) {
        std::cerr << "\nPROVENANCE ERROR: refusing to stamp BENCH json\n";
        if (head != sha) {
          std::cerr << "  HEAD is " << head << " but the binary was "
                    << "configured at " << sha
                    << " — re-run cmake and rebuild so the stamp "
                    << "matches the code.\n";
        }
        for (const auto& p : dirty) {
          std::cerr << "  dirty: " << p << "\n";
        }
        std::cerr << "  (set FASTJOIN_ALLOW_DIRTY=1 to override; the "
                  << "stamp is then marked +dirty)\n";
        std::exit(2);
      }
      sha = head + "+dirty";
    } else {
      sha = head;
    }
  }
  std::ostringstream os;
  os << "\"meta\": {\"git_sha\": \"" << sha
     << "\", \"build_type\": \"" << FASTJOIN_BUILD_TYPE
     << "\", \"workload\": \"" << workload << "\"}";
  return os.str();
}

}  // namespace fastjoin::bench
