#include "support/harness.hpp"

#include <iostream>
#include <sstream>

// Injected by bench/CMakeLists.txt; fall back gracefully when the
// bench sources are compiled outside that scope.
#ifndef FASTJOIN_GIT_SHA
#define FASTJOIN_GIT_SHA "unknown"
#endif
#ifndef FASTJOIN_BUILD_TYPE
#define FASTJOIN_BUILD_TYPE "unspecified"
#endif

namespace fastjoin::bench {

void banner(const std::string& figure, const std::string& description) {
  std::cout << "\n=== " << figure << " — " << description << " ===\n";
}

void print_series(const std::string& title,
                  const std::vector<std::string>& names,
                  const std::vector<TimeSeries>& series, SimTime start,
                  SimTime step, SimTime end) {
  std::cout << "\n-- " << title << " --\n";
  std::vector<std::string> headers{"t(s)"};
  headers.insert(headers.end(), names.begin(), names.end());
  Table table(headers);

  std::vector<std::vector<TimePoint>> resampled;
  std::size_t rows = 0;
  for (const auto& s : series) {
    resampled.push_back(s.resample(start, step));
    rows = std::max(rows, resampled.back().size());
  }
  for (std::size_t i = 0; i < rows; ++i) {
    const SimTime t = start + static_cast<SimTime>(i) * step;
    if (end > 0 && t > end) break;
    std::vector<Cell> row;
    row.emplace_back(to_seconds(t));
    for (const auto& r : resampled) {
      row.emplace_back(i < r.size() ? r[i].v
                                    : (r.empty() ? 0.0 : r.back().v));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

void print_summary(const std::vector<std::string>& names,
                   const std::vector<RunReport>& reports) {
  Table table({"system", "throughput(res/s)", "latency(ms)", "p99(ms)",
               "mean LI", "migrations", "tuples moved", "results"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    table.add_row({names[i], r.mean_throughput, r.mean_latency_ms,
                   r.p99_latency_ms, r.mean_li,
                   static_cast<std::int64_t>(r.migrations),
                   static_cast<std::int64_t>(r.tuples_migrated),
                   static_cast<std::int64_t>(r.results)});
  }
  table.print(std::cout);
}

double improvement_pct(double a, double b) {
  return b != 0.0 ? (a - b) / b * 100.0 : 0.0;
}

std::string json_meta(const std::string& workload) {
  std::ostringstream os;
  os << "\"meta\": {\"git_sha\": \"" << FASTJOIN_GIT_SHA
     << "\", \"build_type\": \"" << FASTJOIN_BUILD_TYPE
     << "\", \"workload\": \"" << workload << "\"}";
  return os.str();
}

}  // namespace fastjoin::bench
