// Output helpers for the figure benches: consistent headers, the
// paper-vs-measured framing, and time-series rendering.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/timeseries.hpp"
#include "engine/engine.hpp"

namespace fastjoin::bench {

/// Print the standard bench banner (figure id + description + knobs).
void banner(const std::string& figure, const std::string& description);

/// Render several time series side by side, resampled on a common grid:
/// one row per time step, one column per series. Rows after `end` are
/// dropped (0 = keep everything) — used to cut the post-feed drain tail.
void print_series(const std::string& title,
                  const std::vector<std::string>& names,
                  const std::vector<TimeSeries>& series, SimTime start,
                  SimTime step, SimTime end = 0);

/// One summary row per system: throughput / latency / LI / migrations.
void print_summary(const std::vector<std::string>& names,
                   const std::vector<RunReport>& reports);

/// Relative improvement in percent: (a - b) / b * 100.
double improvement_pct(double a, double b);

/// Provenance stamp for BENCH_*.json files — a `"meta": {...}` JSON
/// fragment carrying the emitting git SHA, the CMake build type, and
/// the workload knobs, so number trajectories across PRs are
/// attributable to a commit and configuration.
///
/// Fails loudly (exit 2) when the stamp would lie: the working tree is
/// dirty beyond BENCH_*.json files themselves, or HEAD no longer
/// matches the SHA baked in at CMake configure time (stale build). Set
/// FASTJOIN_ALLOW_DIRTY=1 to override during development; the stamp is
/// then suffixed "+dirty" so the JSON cannot masquerade as clean.
std::string json_meta(const std::string& workload);

}  // namespace fastjoin::bench
