// Shared workload definitions for the paper-figure benches.
//
// All experiment-scale constants live here so the whole bench suite can
// be re-calibrated in one place. The simulation represents the paper's
// 30-node / 30 GB testbed at laptop scale: nominal "GB" figures map to
// tuple counts through DatasetScale, stream rates are scaled so one run
// spans tens of virtual seconds, and the cost model is tuned so hot
// instances saturate while the cluster average stays moderate — the
// regime in which the paper's experiments operate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "datagen/ride_hailing.hpp"
#include "datagen/trace.hpp"
#include "engine/engine.hpp"

namespace fastjoin::bench {

/// Paper defaults (Section VI-A): 48 join instances, Theta = 2.2,
/// 30 GB dataset.
struct PaperDefaults {
  std::uint32_t instances = 48;
  double theta = 2.2;
  double dataset_gb = 30.0;
};

/// One nominal-GB -> simulated-tuples mapping shared by every bench.
DatasetScale dataset_scale();

/// The DiDi-calibrated ride-hailing workload for a nominal dataset size.
/// `scale` multiplies the record count (CLI knob for quick/thorough runs).
RideHailingConfig didi_workload(double gb, double scale = 1.0);

/// Engine configuration tuned for the bench cost model. Applies the
/// paper defaults and then the system preset.
EngineConfig bench_engine_config(SystemKind system,
                                 const PaperDefaults& defaults,
                                 std::uint64_t seed = 1);

/// Duration of the simulated measurement for a given workload.
SimTime bench_duration(const RideHailingConfig& wl);

/// Build a synthetic Gxy workload (paper Fig. 12/13): zipf exponents
/// zr, zs in {0, 1, 2}; shared key universe.
struct SyntheticWorkload {
  KeyStreamSpec r;
  KeyStreamSpec s;
  TraceConfig trace;
};
SyntheticWorkload synthetic_workload(double zr, double zs, double scale);

/// Run one system over a fresh ride-hailing workload.
RunReport run_didi(SystemKind system, const PaperDefaults& defaults,
                   double gb, double scale, std::uint64_t seed = 1,
                   std::function<void(EngineConfig&)> tweak = {});

/// Run one system over a synthetic Gxy workload.
RunReport run_synthetic(SystemKind system, double zr, double zs,
                        double scale, const PaperDefaults& defaults);

/// Standard CLI handling: `scale=<f>` shrinks/grows every bench.
double cli_scale(const Config& cfg);

}  // namespace fastjoin::bench
