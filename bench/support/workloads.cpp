#include <algorithm>
#include "support/workloads.hpp"

namespace fastjoin::bench {

DatasetScale dataset_scale() {
  DatasetScale s;
  s.bytes_per_tuple = 48.0;
  s.sim_scale = 5e-4;  // 30 GB -> ~312k simulated tuples
  return s;
}

RideHailingConfig didi_workload(double gb, double scale) {
  RideHailingConfig cfg;
  // c = tuples/key ~ 14 for the order stream at the default 30 GB
  // (paper Section IV-C), growing with the dataset as in the original.
  cfg.num_locations = 20'000;
  const auto records = static_cast<std::uint64_t>(
      static_cast<double>(dataset_scale().tuples_for_gb(gb)) * scale);
  cfg.total_records = records;
  // Track stream is several times the order stream (the real ratio is
  // far larger; 4:1 keeps both streams active at simulation scale).
  cfg.order_rate = 12'500.0;
  cfg.track_rate = 50'000.0;
  cfg.num_taxis = 5'000;
  cfg.seed = 2016;
  return cfg;
}

SimTime bench_duration(const RideHailingConfig& wl) {
  const double combined = wl.order_rate + wl.track_rate;
  const double secs =
      static_cast<double>(wl.total_records) / combined + 2.0;
  return from_seconds(secs);
}

EngineConfig bench_engine_config(SystemKind system,
                                 const PaperDefaults& defaults,
                                 std::uint64_t seed) {
  EngineConfig cfg;
  cfg.instances = defaults.instances;
  cfg.seed = seed;

  // Cost model: hash-index probing; constants chosen so the hottest
  // instances saturate under the default workload while the cluster
  // average stays moderate (see bench/support/workloads.hpp).
  cfg.cost.kind = ProbeCostKind::kHashIndex;
  cfg.cost.store_cost = 150 * kNanosPerMicro;
  cfg.cost.probe_base = 150 * kNanosPerMicro;
  cfg.cost.probe_per_match = 400.0 * kNanosPerMicro;
  cfg.cost.probe_match_cap = 1024;

  cfg.dispatch_latency = 100 * kNanosPerMicro;
  cfg.migration.control_latency = 200 * kNanosPerMicro;
  cfg.migration.link_bytes_per_sec = 125e6;  // 1 Gbps
  cfg.migration.tuple_bytes = 48;

  cfg.balancer.planner.theta = defaults.theta;
  cfg.balancer.monitor_period = kNanosPerSec / 4;  // 250 ms
  cfg.balancer.min_heaviest_load = 1e4;
  cfg.contrand_group = 2;

  cfg.metrics.rate_window = kNanosPerSec / 4;
  cfg.metrics.warmup = from_seconds(2.0);

  apply_system(cfg, system);
  return cfg;
}

SyntheticWorkload synthetic_workload(double zr, double zs, double scale) {
  SyntheticWorkload wl;
  // Paper: 300M tuples/stream, 10M unique keys -> scaled to 1M records
  // total over a 100k-key universe at scale 1.
  wl.r.dist = KeyDist::kZipf;
  wl.r.num_keys = 1'000'000;
  wl.r.zipf_s = zr;
  wl.r.seed = 101;
  wl.r.scramble = 0x5e1ec7edULL;
  wl.s = wl.r;
  wl.s.zipf_s = zs;
  wl.s.seed = 202;

  wl.trace.total_records =
      static_cast<std::uint64_t>(500'000.0 * scale);
  wl.trace.r_rate = 25'000.0;
  wl.trace.s_rate = 25'000.0;
  wl.trace.seed = 7;
  return wl;
}

RunReport run_didi(SystemKind system, const PaperDefaults& defaults,
                   double gb, double scale, std::uint64_t seed,
                   std::function<void(EngineConfig&)> tweak) {
  auto wl = didi_workload(gb, scale);
  RideHailingGenerator gen(wl);
  auto cfg = bench_engine_config(system, defaults, seed);
  // Warm-up must fit inside the feed, or small datasets report nothing.
  const double feed_secs = static_cast<double>(wl.total_records) /
                           (wl.order_rate + wl.track_rate);
  cfg.metrics.warmup =
      std::min(cfg.metrics.warmup, from_seconds(0.2 * feed_secs));
  if (tweak) tweak(cfg);
  SimJoinEngine engine(cfg);
  return engine.run(gen, bench_duration(wl));
}

RunReport run_synthetic(SystemKind system, double zr, double zs,
                        double scale, const PaperDefaults& defaults) {
  auto wl = synthetic_workload(zr, zs, scale);
  TraceGenerator gen(wl.r, wl.s, wl.trace);
  auto cfg = bench_engine_config(system, defaults, 1);
  // The synthetic streams share their popularity ranking (both zipf over
  // the same value domain), so hot keys coincide and match work piles
  // onto single keys no balancer can split. Weight the cost model toward
  // per-tuple processing so the load reflects probe/store counts — the
  // regime in which key migration can act — while emission stays real
  // but cheap.
  cfg.cost.probe_base = 400 * kNanosPerMicro;
  cfg.cost.probe_per_match = 1 * kNanosPerMicro;
  const double combined = wl.trace.r_rate + wl.trace.s_rate;
  const double feed_secs =
      static_cast<double>(wl.trace.total_records) / combined;
  cfg.metrics.warmup =
      std::min(cfg.metrics.warmup, from_seconds(0.2 * feed_secs));
  const SimTime duration = from_seconds(feed_secs + 2.0);
  SimJoinEngine engine(cfg);
  return engine.run(gen, duration);
}

double cli_scale(const Config& cfg) {
  return cfg.get_double("scale", 1.0);
}

}  // namespace fastjoin::bench
