file(REMOVE_RECURSE
  "CMakeFiles/micro_key_selection.dir/micro_key_selection.cpp.o"
  "CMakeFiles/micro_key_selection.dir/micro_key_selection.cpp.o.d"
  "micro_key_selection"
  "micro_key_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_key_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
