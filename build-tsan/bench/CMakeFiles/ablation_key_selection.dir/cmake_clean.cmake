file(REMOVE_RECURSE
  "CMakeFiles/ablation_key_selection.dir/ablation_key_selection.cpp.o"
  "CMakeFiles/ablation_key_selection.dir/ablation_key_selection.cpp.o.d"
  "ablation_key_selection"
  "ablation_key_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_key_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
