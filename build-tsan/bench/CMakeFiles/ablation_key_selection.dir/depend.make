# Empty dependencies file for ablation_key_selection.
# This may be replaced when dependencies are built.
