file(REMOVE_RECURSE
  "CMakeFiles/fig14_greedy_vs_sa.dir/fig14_greedy_vs_sa.cpp.o"
  "CMakeFiles/fig14_greedy_vs_sa.dir/fig14_greedy_vs_sa.cpp.o.d"
  "fig14_greedy_vs_sa"
  "fig14_greedy_vs_sa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_greedy_vs_sa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
