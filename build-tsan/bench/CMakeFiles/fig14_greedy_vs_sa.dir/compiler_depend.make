# Empty compiler generated dependencies file for fig14_greedy_vs_sa.
# This may be replaced when dependencies are built.
