# Empty compiler generated dependencies file for fig09_10_threshold.
# This may be replaced when dependencies are built.
