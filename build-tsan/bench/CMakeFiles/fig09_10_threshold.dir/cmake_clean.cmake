file(REMOVE_RECURSE
  "CMakeFiles/fig09_10_threshold.dir/fig09_10_threshold.cpp.o"
  "CMakeFiles/fig09_10_threshold.dir/fig09_10_threshold.cpp.o.d"
  "fig09_10_threshold"
  "fig09_10_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_10_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
