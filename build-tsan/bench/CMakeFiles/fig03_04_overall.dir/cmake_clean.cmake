file(REMOVE_RECURSE
  "CMakeFiles/fig03_04_overall.dir/fig03_04_overall.cpp.o"
  "CMakeFiles/fig03_04_overall.dir/fig03_04_overall.cpp.o.d"
  "fig03_04_overall"
  "fig03_04_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_04_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
