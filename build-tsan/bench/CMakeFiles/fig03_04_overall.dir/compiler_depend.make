# Empty compiler generated dependencies file for fig03_04_overall.
# This may be replaced when dependencies are built.
