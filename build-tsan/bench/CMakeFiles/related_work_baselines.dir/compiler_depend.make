# Empty compiler generated dependencies file for related_work_baselines.
# This may be replaced when dependencies are built.
