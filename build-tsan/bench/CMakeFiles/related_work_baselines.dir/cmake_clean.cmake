file(REMOVE_RECURSE
  "CMakeFiles/related_work_baselines.dir/related_work_baselines.cpp.o"
  "CMakeFiles/related_work_baselines.dir/related_work_baselines.cpp.o.d"
  "related_work_baselines"
  "related_work_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_work_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
