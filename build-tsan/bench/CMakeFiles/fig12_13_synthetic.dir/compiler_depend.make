# Empty compiler generated dependencies file for fig12_13_synthetic.
# This may be replaced when dependencies are built.
