file(REMOVE_RECURSE
  "CMakeFiles/fig12_13_synthetic.dir/fig12_13_synthetic.cpp.o"
  "CMakeFiles/fig12_13_synthetic.dir/fig12_13_synthetic.cpp.o.d"
  "fig12_13_synthetic"
  "fig12_13_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_13_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
