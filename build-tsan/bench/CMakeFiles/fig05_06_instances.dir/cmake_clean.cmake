file(REMOVE_RECURSE
  "CMakeFiles/fig05_06_instances.dir/fig05_06_instances.cpp.o"
  "CMakeFiles/fig05_06_instances.dir/fig05_06_instances.cpp.o.d"
  "fig05_06_instances"
  "fig05_06_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_06_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
