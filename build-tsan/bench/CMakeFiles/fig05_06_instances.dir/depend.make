# Empty dependencies file for fig05_06_instances.
# This may be replaced when dependencies are built.
