file(REMOVE_RECURSE
  "CMakeFiles/fig07_08_datasize.dir/fig07_08_datasize.cpp.o"
  "CMakeFiles/fig07_08_datasize.dir/fig07_08_datasize.cpp.o.d"
  "fig07_08_datasize"
  "fig07_08_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_08_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
