# Empty compiler generated dependencies file for fig07_08_datasize.
# This may be replaced when dependencies are built.
