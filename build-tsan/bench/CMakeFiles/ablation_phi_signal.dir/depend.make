# Empty dependencies file for ablation_phi_signal.
# This may be replaced when dependencies are built.
