file(REMOVE_RECURSE
  "CMakeFiles/ablation_phi_signal.dir/ablation_phi_signal.cpp.o"
  "CMakeFiles/ablation_phi_signal.dir/ablation_phi_signal.cpp.o.d"
  "ablation_phi_signal"
  "ablation_phi_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phi_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
