file(REMOVE_RECURSE
  "CMakeFiles/fig11_imbalance.dir/fig11_imbalance.cpp.o"
  "CMakeFiles/fig11_imbalance.dir/fig11_imbalance.cpp.o.d"
  "fig11_imbalance"
  "fig11_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
