# Empty compiler generated dependencies file for fig11_imbalance.
# This may be replaced when dependencies are built.
