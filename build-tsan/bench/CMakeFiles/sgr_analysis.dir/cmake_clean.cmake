file(REMOVE_RECURSE
  "CMakeFiles/sgr_analysis.dir/sgr_analysis.cpp.o"
  "CMakeFiles/sgr_analysis.dir/sgr_analysis.cpp.o.d"
  "sgr_analysis"
  "sgr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
