# Empty dependencies file for sgr_analysis.
# This may be replaced when dependencies are built.
