file(REMOVE_RECURSE
  "libfastjoin_datagen.a"
)
