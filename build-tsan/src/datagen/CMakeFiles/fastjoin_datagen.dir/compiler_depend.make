# Empty compiler generated dependencies file for fastjoin_datagen.
# This may be replaced when dependencies are built.
