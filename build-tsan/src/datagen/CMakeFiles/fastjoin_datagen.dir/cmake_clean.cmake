file(REMOVE_RECURSE
  "CMakeFiles/fastjoin_datagen.dir/adclick.cpp.o"
  "CMakeFiles/fastjoin_datagen.dir/adclick.cpp.o.d"
  "CMakeFiles/fastjoin_datagen.dir/keygen.cpp.o"
  "CMakeFiles/fastjoin_datagen.dir/keygen.cpp.o.d"
  "CMakeFiles/fastjoin_datagen.dir/ride_hailing.cpp.o"
  "CMakeFiles/fastjoin_datagen.dir/ride_hailing.cpp.o.d"
  "CMakeFiles/fastjoin_datagen.dir/stock.cpp.o"
  "CMakeFiles/fastjoin_datagen.dir/stock.cpp.o.d"
  "CMakeFiles/fastjoin_datagen.dir/trace.cpp.o"
  "CMakeFiles/fastjoin_datagen.dir/trace.cpp.o.d"
  "CMakeFiles/fastjoin_datagen.dir/trace_io.cpp.o"
  "CMakeFiles/fastjoin_datagen.dir/trace_io.cpp.o.d"
  "CMakeFiles/fastjoin_datagen.dir/zipf.cpp.o"
  "CMakeFiles/fastjoin_datagen.dir/zipf.cpp.o.d"
  "libfastjoin_datagen.a"
  "libfastjoin_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastjoin_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
