
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/adclick.cpp" "src/datagen/CMakeFiles/fastjoin_datagen.dir/adclick.cpp.o" "gcc" "src/datagen/CMakeFiles/fastjoin_datagen.dir/adclick.cpp.o.d"
  "/root/repo/src/datagen/keygen.cpp" "src/datagen/CMakeFiles/fastjoin_datagen.dir/keygen.cpp.o" "gcc" "src/datagen/CMakeFiles/fastjoin_datagen.dir/keygen.cpp.o.d"
  "/root/repo/src/datagen/ride_hailing.cpp" "src/datagen/CMakeFiles/fastjoin_datagen.dir/ride_hailing.cpp.o" "gcc" "src/datagen/CMakeFiles/fastjoin_datagen.dir/ride_hailing.cpp.o.d"
  "/root/repo/src/datagen/stock.cpp" "src/datagen/CMakeFiles/fastjoin_datagen.dir/stock.cpp.o" "gcc" "src/datagen/CMakeFiles/fastjoin_datagen.dir/stock.cpp.o.d"
  "/root/repo/src/datagen/trace.cpp" "src/datagen/CMakeFiles/fastjoin_datagen.dir/trace.cpp.o" "gcc" "src/datagen/CMakeFiles/fastjoin_datagen.dir/trace.cpp.o.d"
  "/root/repo/src/datagen/trace_io.cpp" "src/datagen/CMakeFiles/fastjoin_datagen.dir/trace_io.cpp.o" "gcc" "src/datagen/CMakeFiles/fastjoin_datagen.dir/trace_io.cpp.o.d"
  "/root/repo/src/datagen/zipf.cpp" "src/datagen/CMakeFiles/fastjoin_datagen.dir/zipf.cpp.o" "gcc" "src/datagen/CMakeFiles/fastjoin_datagen.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/fastjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
