file(REMOVE_RECURSE
  "CMakeFiles/fastjoin_simnet.dir/link.cpp.o"
  "CMakeFiles/fastjoin_simnet.dir/link.cpp.o.d"
  "CMakeFiles/fastjoin_simnet.dir/server.cpp.o"
  "CMakeFiles/fastjoin_simnet.dir/server.cpp.o.d"
  "CMakeFiles/fastjoin_simnet.dir/simulator.cpp.o"
  "CMakeFiles/fastjoin_simnet.dir/simulator.cpp.o.d"
  "libfastjoin_simnet.a"
  "libfastjoin_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastjoin_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
