file(REMOVE_RECURSE
  "libfastjoin_simnet.a"
)
