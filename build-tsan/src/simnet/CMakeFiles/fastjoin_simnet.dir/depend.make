# Empty dependencies file for fastjoin_simnet.
# This may be replaced when dependencies are built.
