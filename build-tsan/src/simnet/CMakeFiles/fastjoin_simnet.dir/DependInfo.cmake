
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/link.cpp" "src/simnet/CMakeFiles/fastjoin_simnet.dir/link.cpp.o" "gcc" "src/simnet/CMakeFiles/fastjoin_simnet.dir/link.cpp.o.d"
  "/root/repo/src/simnet/server.cpp" "src/simnet/CMakeFiles/fastjoin_simnet.dir/server.cpp.o" "gcc" "src/simnet/CMakeFiles/fastjoin_simnet.dir/server.cpp.o.d"
  "/root/repo/src/simnet/simulator.cpp" "src/simnet/CMakeFiles/fastjoin_simnet.dir/simulator.cpp.o" "gcc" "src/simnet/CMakeFiles/fastjoin_simnet.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/fastjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
