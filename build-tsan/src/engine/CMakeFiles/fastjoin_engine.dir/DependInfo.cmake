
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cost_model.cpp" "src/engine/CMakeFiles/fastjoin_engine.dir/cost_model.cpp.o" "gcc" "src/engine/CMakeFiles/fastjoin_engine.dir/cost_model.cpp.o.d"
  "/root/repo/src/engine/dispatcher.cpp" "src/engine/CMakeFiles/fastjoin_engine.dir/dispatcher.cpp.o" "gcc" "src/engine/CMakeFiles/fastjoin_engine.dir/dispatcher.cpp.o.d"
  "/root/repo/src/engine/engine.cpp" "src/engine/CMakeFiles/fastjoin_engine.dir/engine.cpp.o" "gcc" "src/engine/CMakeFiles/fastjoin_engine.dir/engine.cpp.o.d"
  "/root/repo/src/engine/join_instance.cpp" "src/engine/CMakeFiles/fastjoin_engine.dir/join_instance.cpp.o" "gcc" "src/engine/CMakeFiles/fastjoin_engine.dir/join_instance.cpp.o.d"
  "/root/repo/src/engine/join_store.cpp" "src/engine/CMakeFiles/fastjoin_engine.dir/join_store.cpp.o" "gcc" "src/engine/CMakeFiles/fastjoin_engine.dir/join_store.cpp.o.d"
  "/root/repo/src/engine/matrix_engine.cpp" "src/engine/CMakeFiles/fastjoin_engine.dir/matrix_engine.cpp.o" "gcc" "src/engine/CMakeFiles/fastjoin_engine.dir/matrix_engine.cpp.o.d"
  "/root/repo/src/engine/metrics.cpp" "src/engine/CMakeFiles/fastjoin_engine.dir/metrics.cpp.o" "gcc" "src/engine/CMakeFiles/fastjoin_engine.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/fastjoin_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/datagen/CMakeFiles/fastjoin_datagen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/simnet/CMakeFiles/fastjoin_simnet.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/fastjoin_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
