# Empty dependencies file for fastjoin_engine.
# This may be replaced when dependencies are built.
