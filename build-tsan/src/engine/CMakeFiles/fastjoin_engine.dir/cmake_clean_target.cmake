file(REMOVE_RECURSE
  "libfastjoin_engine.a"
)
