file(REMOVE_RECURSE
  "CMakeFiles/fastjoin_engine.dir/cost_model.cpp.o"
  "CMakeFiles/fastjoin_engine.dir/cost_model.cpp.o.d"
  "CMakeFiles/fastjoin_engine.dir/dispatcher.cpp.o"
  "CMakeFiles/fastjoin_engine.dir/dispatcher.cpp.o.d"
  "CMakeFiles/fastjoin_engine.dir/engine.cpp.o"
  "CMakeFiles/fastjoin_engine.dir/engine.cpp.o.d"
  "CMakeFiles/fastjoin_engine.dir/join_instance.cpp.o"
  "CMakeFiles/fastjoin_engine.dir/join_instance.cpp.o.d"
  "CMakeFiles/fastjoin_engine.dir/join_store.cpp.o"
  "CMakeFiles/fastjoin_engine.dir/join_store.cpp.o.d"
  "CMakeFiles/fastjoin_engine.dir/matrix_engine.cpp.o"
  "CMakeFiles/fastjoin_engine.dir/matrix_engine.cpp.o.d"
  "CMakeFiles/fastjoin_engine.dir/metrics.cpp.o"
  "CMakeFiles/fastjoin_engine.dir/metrics.cpp.o.d"
  "libfastjoin_engine.a"
  "libfastjoin_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastjoin_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
