file(REMOVE_RECURSE
  "libfastjoin_runtime.a"
)
