# Empty dependencies file for fastjoin_runtime.
# This may be replaced when dependencies are built.
