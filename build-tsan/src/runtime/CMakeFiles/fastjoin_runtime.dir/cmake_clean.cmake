file(REMOVE_RECURSE
  "CMakeFiles/fastjoin_runtime.dir/live_engine.cpp.o"
  "CMakeFiles/fastjoin_runtime.dir/live_engine.cpp.o.d"
  "libfastjoin_runtime.a"
  "libfastjoin_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastjoin_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
