file(REMOVE_RECURSE
  "libfastjoin_common.a"
)
