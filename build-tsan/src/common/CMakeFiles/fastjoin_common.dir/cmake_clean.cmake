file(REMOVE_RECURSE
  "CMakeFiles/fastjoin_common.dir/config.cpp.o"
  "CMakeFiles/fastjoin_common.dir/config.cpp.o.d"
  "CMakeFiles/fastjoin_common.dir/hash.cpp.o"
  "CMakeFiles/fastjoin_common.dir/hash.cpp.o.d"
  "CMakeFiles/fastjoin_common.dir/histogram.cpp.o"
  "CMakeFiles/fastjoin_common.dir/histogram.cpp.o.d"
  "CMakeFiles/fastjoin_common.dir/logging.cpp.o"
  "CMakeFiles/fastjoin_common.dir/logging.cpp.o.d"
  "CMakeFiles/fastjoin_common.dir/rng.cpp.o"
  "CMakeFiles/fastjoin_common.dir/rng.cpp.o.d"
  "CMakeFiles/fastjoin_common.dir/spacesaving.cpp.o"
  "CMakeFiles/fastjoin_common.dir/spacesaving.cpp.o.d"
  "CMakeFiles/fastjoin_common.dir/stats.cpp.o"
  "CMakeFiles/fastjoin_common.dir/stats.cpp.o.d"
  "CMakeFiles/fastjoin_common.dir/table.cpp.o"
  "CMakeFiles/fastjoin_common.dir/table.cpp.o.d"
  "CMakeFiles/fastjoin_common.dir/thread_pool.cpp.o"
  "CMakeFiles/fastjoin_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/fastjoin_common.dir/timeseries.cpp.o"
  "CMakeFiles/fastjoin_common.dir/timeseries.cpp.o.d"
  "libfastjoin_common.a"
  "libfastjoin_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastjoin_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
