# Empty dependencies file for fastjoin_common.
# This may be replaced when dependencies are built.
