file(REMOVE_RECURSE
  "libfastjoin_core.a"
)
