# Empty dependencies file for fastjoin_core.
# This may be replaced when dependencies are built.
