
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/greedy_fit.cpp" "src/core/CMakeFiles/fastjoin_core.dir/greedy_fit.cpp.o" "gcc" "src/core/CMakeFiles/fastjoin_core.dir/greedy_fit.cpp.o.d"
  "/root/repo/src/core/load_model.cpp" "src/core/CMakeFiles/fastjoin_core.dir/load_model.cpp.o" "gcc" "src/core/CMakeFiles/fastjoin_core.dir/load_model.cpp.o.d"
  "/root/repo/src/core/optimal_fit.cpp" "src/core/CMakeFiles/fastjoin_core.dir/optimal_fit.cpp.o" "gcc" "src/core/CMakeFiles/fastjoin_core.dir/optimal_fit.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/fastjoin_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/fastjoin_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/random_fit.cpp" "src/core/CMakeFiles/fastjoin_core.dir/random_fit.cpp.o" "gcc" "src/core/CMakeFiles/fastjoin_core.dir/random_fit.cpp.o.d"
  "/root/repo/src/core/sa_fit.cpp" "src/core/CMakeFiles/fastjoin_core.dir/sa_fit.cpp.o" "gcc" "src/core/CMakeFiles/fastjoin_core.dir/sa_fit.cpp.o.d"
  "/root/repo/src/core/sgr.cpp" "src/core/CMakeFiles/fastjoin_core.dir/sgr.cpp.o" "gcc" "src/core/CMakeFiles/fastjoin_core.dir/sgr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/fastjoin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
