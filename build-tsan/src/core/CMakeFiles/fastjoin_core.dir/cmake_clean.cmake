file(REMOVE_RECURSE
  "CMakeFiles/fastjoin_core.dir/greedy_fit.cpp.o"
  "CMakeFiles/fastjoin_core.dir/greedy_fit.cpp.o.d"
  "CMakeFiles/fastjoin_core.dir/load_model.cpp.o"
  "CMakeFiles/fastjoin_core.dir/load_model.cpp.o.d"
  "CMakeFiles/fastjoin_core.dir/optimal_fit.cpp.o"
  "CMakeFiles/fastjoin_core.dir/optimal_fit.cpp.o.d"
  "CMakeFiles/fastjoin_core.dir/planner.cpp.o"
  "CMakeFiles/fastjoin_core.dir/planner.cpp.o.d"
  "CMakeFiles/fastjoin_core.dir/random_fit.cpp.o"
  "CMakeFiles/fastjoin_core.dir/random_fit.cpp.o.d"
  "CMakeFiles/fastjoin_core.dir/sa_fit.cpp.o"
  "CMakeFiles/fastjoin_core.dir/sa_fit.cpp.o.d"
  "CMakeFiles/fastjoin_core.dir/sgr.cpp.o"
  "CMakeFiles/fastjoin_core.dir/sgr.cpp.o.d"
  "libfastjoin_core.a"
  "libfastjoin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastjoin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
