file(REMOVE_RECURSE
  "CMakeFiles/ad_analytics.dir/ad_analytics.cpp.o"
  "CMakeFiles/ad_analytics.dir/ad_analytics.cpp.o.d"
  "ad_analytics"
  "ad_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
