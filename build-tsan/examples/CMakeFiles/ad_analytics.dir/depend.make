# Empty dependencies file for ad_analytics.
# This may be replaced when dependencies are built.
