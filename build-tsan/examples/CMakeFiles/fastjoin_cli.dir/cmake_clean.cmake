file(REMOVE_RECURSE
  "CMakeFiles/fastjoin_cli.dir/fastjoin_cli.cpp.o"
  "CMakeFiles/fastjoin_cli.dir/fastjoin_cli.cpp.o.d"
  "fastjoin_cli"
  "fastjoin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastjoin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
