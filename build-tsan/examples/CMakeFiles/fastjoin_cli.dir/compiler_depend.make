# Empty compiler generated dependencies file for fastjoin_cli.
# This may be replaced when dependencies are built.
