# Empty compiler generated dependencies file for window_join.
# This may be replaced when dependencies are built.
