file(REMOVE_RECURSE
  "CMakeFiles/window_join.dir/window_join.cpp.o"
  "CMakeFiles/window_join.dir/window_join.cpp.o.d"
  "window_join"
  "window_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
