file(REMOVE_RECURSE
  "CMakeFiles/live_runtime.dir/live_runtime.cpp.o"
  "CMakeFiles/live_runtime.dir/live_runtime.cpp.o.d"
  "live_runtime"
  "live_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
