# Empty compiler generated dependencies file for live_runtime.
# This may be replaced when dependencies are built.
