file(REMOVE_RECURSE
  "CMakeFiles/ride_hailing.dir/ride_hailing.cpp.o"
  "CMakeFiles/ride_hailing.dir/ride_hailing.cpp.o.d"
  "ride_hailing"
  "ride_hailing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ride_hailing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
