# Empty compiler generated dependencies file for ride_hailing.
# This may be replaced when dependencies are built.
