# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_common[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_datagen[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_simnet[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_core[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_engine[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_runtime[1]_include.cmake")
