
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/config_test.cpp" "tests/CMakeFiles/test_common.dir/common/config_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/config_test.cpp.o.d"
  "/root/repo/tests/common/hash_test.cpp" "tests/CMakeFiles/test_common.dir/common/hash_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/hash_test.cpp.o.d"
  "/root/repo/tests/common/histogram_test.cpp" "tests/CMakeFiles/test_common.dir/common/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/histogram_test.cpp.o.d"
  "/root/repo/tests/common/logging_test.cpp" "tests/CMakeFiles/test_common.dir/common/logging_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/logging_test.cpp.o.d"
  "/root/repo/tests/common/queues_test.cpp" "tests/CMakeFiles/test_common.dir/common/queues_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/queues_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/test_common.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/spacesaving_test.cpp" "tests/CMakeFiles/test_common.dir/common/spacesaving_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/spacesaving_test.cpp.o.d"
  "/root/repo/tests/common/stats_test.cpp" "tests/CMakeFiles/test_common.dir/common/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/stats_test.cpp.o.d"
  "/root/repo/tests/common/table_test.cpp" "tests/CMakeFiles/test_common.dir/common/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/table_test.cpp.o.d"
  "/root/repo/tests/common/thread_pool_test.cpp" "tests/CMakeFiles/test_common.dir/common/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/thread_pool_test.cpp.o.d"
  "/root/repo/tests/common/timeseries_test.cpp" "tests/CMakeFiles/test_common.dir/common/timeseries_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/timeseries_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/fastjoin_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/datagen/CMakeFiles/fastjoin_datagen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/simnet/CMakeFiles/fastjoin_simnet.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/fastjoin_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/engine/CMakeFiles/fastjoin_engine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/runtime/CMakeFiles/fastjoin_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
