file(REMOVE_RECURSE
  "CMakeFiles/test_datagen.dir/datagen/adclick_test.cpp.o"
  "CMakeFiles/test_datagen.dir/datagen/adclick_test.cpp.o.d"
  "CMakeFiles/test_datagen.dir/datagen/keygen_test.cpp.o"
  "CMakeFiles/test_datagen.dir/datagen/keygen_test.cpp.o.d"
  "CMakeFiles/test_datagen.dir/datagen/ride_hailing_test.cpp.o"
  "CMakeFiles/test_datagen.dir/datagen/ride_hailing_test.cpp.o.d"
  "CMakeFiles/test_datagen.dir/datagen/stock_test.cpp.o"
  "CMakeFiles/test_datagen.dir/datagen/stock_test.cpp.o.d"
  "CMakeFiles/test_datagen.dir/datagen/trace_io_test.cpp.o"
  "CMakeFiles/test_datagen.dir/datagen/trace_io_test.cpp.o.d"
  "CMakeFiles/test_datagen.dir/datagen/trace_test.cpp.o"
  "CMakeFiles/test_datagen.dir/datagen/trace_test.cpp.o.d"
  "CMakeFiles/test_datagen.dir/datagen/zipf_test.cpp.o"
  "CMakeFiles/test_datagen.dir/datagen/zipf_test.cpp.o.d"
  "test_datagen"
  "test_datagen.pdb"
  "test_datagen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
