
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/datagen/adclick_test.cpp" "tests/CMakeFiles/test_datagen.dir/datagen/adclick_test.cpp.o" "gcc" "tests/CMakeFiles/test_datagen.dir/datagen/adclick_test.cpp.o.d"
  "/root/repo/tests/datagen/keygen_test.cpp" "tests/CMakeFiles/test_datagen.dir/datagen/keygen_test.cpp.o" "gcc" "tests/CMakeFiles/test_datagen.dir/datagen/keygen_test.cpp.o.d"
  "/root/repo/tests/datagen/ride_hailing_test.cpp" "tests/CMakeFiles/test_datagen.dir/datagen/ride_hailing_test.cpp.o" "gcc" "tests/CMakeFiles/test_datagen.dir/datagen/ride_hailing_test.cpp.o.d"
  "/root/repo/tests/datagen/stock_test.cpp" "tests/CMakeFiles/test_datagen.dir/datagen/stock_test.cpp.o" "gcc" "tests/CMakeFiles/test_datagen.dir/datagen/stock_test.cpp.o.d"
  "/root/repo/tests/datagen/trace_io_test.cpp" "tests/CMakeFiles/test_datagen.dir/datagen/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_datagen.dir/datagen/trace_io_test.cpp.o.d"
  "/root/repo/tests/datagen/trace_test.cpp" "tests/CMakeFiles/test_datagen.dir/datagen/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_datagen.dir/datagen/trace_test.cpp.o.d"
  "/root/repo/tests/datagen/zipf_test.cpp" "tests/CMakeFiles/test_datagen.dir/datagen/zipf_test.cpp.o" "gcc" "tests/CMakeFiles/test_datagen.dir/datagen/zipf_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/fastjoin_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/datagen/CMakeFiles/fastjoin_datagen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/simnet/CMakeFiles/fastjoin_simnet.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/fastjoin_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/engine/CMakeFiles/fastjoin_engine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/runtime/CMakeFiles/fastjoin_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
