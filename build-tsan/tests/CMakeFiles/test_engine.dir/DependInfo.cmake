
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/chaos_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/chaos_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/chaos_test.cpp.o.d"
  "/root/repo/tests/engine/completeness_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/completeness_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/completeness_test.cpp.o.d"
  "/root/repo/tests/engine/cost_model_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/cost_model_test.cpp.o.d"
  "/root/repo/tests/engine/dispatcher_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/dispatcher_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/dispatcher_test.cpp.o.d"
  "/root/repo/tests/engine/engine_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/engine_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/engine_test.cpp.o.d"
  "/root/repo/tests/engine/fault_tolerance_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/fault_tolerance_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/fault_tolerance_test.cpp.o.d"
  "/root/repo/tests/engine/join_instance_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/join_instance_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/join_instance_test.cpp.o.d"
  "/root/repo/tests/engine/join_store_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/join_store_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/join_store_test.cpp.o.d"
  "/root/repo/tests/engine/matrix_engine_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/matrix_engine_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/matrix_engine_test.cpp.o.d"
  "/root/repo/tests/engine/metrics_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/metrics_test.cpp.o.d"
  "/root/repo/tests/engine/migration_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/migration_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/migration_test.cpp.o.d"
  "/root/repo/tests/engine/phi_signal_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/phi_signal_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/phi_signal_test.cpp.o.d"
  "/root/repo/tests/engine/pkg_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/pkg_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/pkg_test.cpp.o.d"
  "/root/repo/tests/engine/preprocess_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/preprocess_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/preprocess_test.cpp.o.d"
  "/root/repo/tests/engine/scale_out_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/scale_out_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/scale_out_test.cpp.o.d"
  "/root/repo/tests/engine/sketch_stats_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/sketch_stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/sketch_stats_test.cpp.o.d"
  "/root/repo/tests/engine/window_test.cpp" "tests/CMakeFiles/test_engine.dir/engine/window_test.cpp.o" "gcc" "tests/CMakeFiles/test_engine.dir/engine/window_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/fastjoin_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/datagen/CMakeFiles/fastjoin_datagen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/simnet/CMakeFiles/fastjoin_simnet.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/fastjoin_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/engine/CMakeFiles/fastjoin_engine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/runtime/CMakeFiles/fastjoin_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
