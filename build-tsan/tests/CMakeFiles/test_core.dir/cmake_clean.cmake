file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/greedy_fit_test.cpp.o"
  "CMakeFiles/test_core.dir/core/greedy_fit_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/load_model_test.cpp.o"
  "CMakeFiles/test_core.dir/core/load_model_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/multi_pair_test.cpp.o"
  "CMakeFiles/test_core.dir/core/multi_pair_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/optimal_fit_test.cpp.o"
  "CMakeFiles/test_core.dir/core/optimal_fit_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/planner_test.cpp.o"
  "CMakeFiles/test_core.dir/core/planner_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/random_fit_test.cpp.o"
  "CMakeFiles/test_core.dir/core/random_fit_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sa_fit_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sa_fit_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sgr_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sgr_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
